// Package faultinject provides seeded, deterministic fault injection for
// the profiling pipeline, plus the typed error taxonomy the rest of the
// system classifies failures against.
//
// A Plan is a seeded fault schedule. Code under test threads named
// injection points through its I/O and scheduling seams ("fs.rename",
// "fs.bitflip", "vm.watchdog", ...); each armed point draws from its own
// deterministic PRNG stream — seeded by the plan seed and the point name,
// independent of call interleaving across points — so the same seed
// reproduces the same fault schedule, operation for operation. Unarmed
// points cost one nil check.
//
// The taxonomy divides faults into three classes a caller can act on:
//
//   - Transient: retryable I/O (interrupted writes, spurious EAGAIN-style
//     failures). A bounded retry-with-backoff (RetryPolicy) is expected
//     to clear it.
//   - Corruption: damaged bytes — CRC mismatches, torn frames, garbage
//     manifests. Never retried; surfaced so a damaged artifact is flagged
//     instead of silently yielding a plausible-but-wrong profile.
//   - Resource: exhausted resources (ENOSPC, EMFILE, ...). Not retryable
//     on the spot; the operation fails with a typed error.
//
// ClassOf classifies any error chain: *Fault errors carry their class,
// other error types may implement Classifier, and well-known errno values
// map to Transient or Resource.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
)

// FaultClass partitions failures by how a caller should react.
type FaultClass uint8

// Fault classes. Unknown marks an unclassified error — a bug, a panic, or
// an error the taxonomy does not cover; robustness harnesses treat it as a
// failure, never as an acceptable outcome.
const (
	Unknown FaultClass = iota
	// Transient is retryable I/O; bounded retry-with-backoff should clear it.
	Transient
	// Corruption is damaged bytes: CRC mismatches, torn frames, garbage
	// manifests. Never retried.
	Corruption
	// Resource is an exhausted resource: ENOSPC, EMFILE, quota, limits.
	Resource
)

// String implements fmt.Stringer.
func (c FaultClass) String() string {
	switch c {
	case Transient:
		return "transient"
	case Corruption:
		return "corruption"
	case Resource:
		return "resource"
	}
	return "unknown"
}

// Fault is one injected (or injected-style) failure: its class, the
// injection point that raised it, and the underlying cause when the fault
// models a specific errno.
type Fault struct {
	// Class is the fault's taxonomy class.
	Class FaultClass
	// Point names the injection point that fired.
	Point string
	// Op describes the failed operation ("rename /x -> /y").
	Op string
	// Err is the modelled cause (syscall.ENOSPC, io.ErrShortWrite, ...);
	// may be nil for a generic fault of the class.
	Err error
}

// Error implements error.
func (f *Fault) Error() string {
	s := fmt.Sprintf("faultinject: %s fault at %s", f.Class, f.Point)
	if f.Op != "" {
		s += ": " + f.Op
	}
	if f.Err != nil {
		s += ": " + f.Err.Error()
	}
	return s
}

// Unwrap exposes the modelled cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// FaultClass implements Classifier.
func (f *Fault) FaultClass() FaultClass { return f.Class }

// Classifier is implemented by error types that know their own fault
// class (e.g. the trace decoder's corruption errors).
type Classifier interface {
	FaultClass() FaultClass
}

// ClassOf classifies an error chain: the first Classifier in the chain
// wins, then well-known errno values, then Unknown.
func ClassOf(err error) FaultClass {
	if err == nil {
		return Unknown
	}
	var c Classifier
	if errors.As(err, &c) {
		return c.FaultClass()
	}
	for _, e := range []error{syscall.ENOSPC, syscall.EMFILE, syscall.ENFILE, syscall.EDQUOT, syscall.ENOMEM} {
		if errors.Is(err, e) {
			return Resource
		}
	}
	if errors.Is(err, io.ErrShortWrite) || errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) {
		return Transient
	}
	return Unknown
}

// ---------------------------------------------------------------------------
// Seeded schedules

// Plan is one seeded fault schedule: a set of armed injection points, each
// with its own deterministic draw stream. The zero of *Plan (nil) arms
// nothing and injects nothing, so production code can thread a plan
// unconditionally.
type Plan struct {
	seed   uint64
	mu     sync.Mutex
	points map[string]*Point
}

// NewPlan creates an empty schedule for the given seed. Arm points to
// make it inject anything.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, points: map[string]*Point{}}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// PointConfig arms one injection point.
type PointConfig struct {
	// Prob is the per-operation fire probability in [0, 1].
	Prob float64
	// MaxFires bounds how many times the point fires (0 = unlimited).
	MaxFires int
	// Class is the taxonomy class of the faults this point raises.
	Class FaultClass
	// Errno is the modelled cause attached to raised faults (e.g.
	// syscall.ENOSPC for a Resource point); may be nil.
	Errno error
	// PathSuffix, when non-empty, restricts a filesystem point to paths
	// with this suffix (e.g. "trace.bin"); non-matching operations draw
	// nothing, so the schedule for matching paths is independent of
	// unrelated traffic.
	PathSuffix string
}

// Arm registers (or replaces) the named injection point.
func (p *Plan) Arm(name string, cfg PointConfig) *Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	pt := &Point{name: name, cfg: cfg, rng: splitmix64(p.seed ^ fnv64(name))}
	p.points[name] = pt
	return pt
}

// Point returns the named point, or nil when unarmed. All Point methods
// are nil-safe, so call sites never check.
func (p *Plan) Point(name string) *Point {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.points[name]
}

// Point is one armed injection point. Its draw stream depends only on the
// plan seed, the point name, and how many (matching) operations it has
// seen — not on wall clock or goroutine interleaving across points.
type Point struct {
	name string
	cfg  PointConfig

	mu    sync.Mutex
	rng   uint64
	ops   int
	fires int
}

// next draws the next value of the point's PRNG stream.
func (pt *Point) next() uint64 {
	pt.rng += 0x9e3779b97f4a7c15
	z := pt.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmix64 scrambles a seed into the stream's initial state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a point name (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fire reports whether the point's next operation faults. Nil-safe: an
// unarmed (nil) point never fires.
func (pt *Point) Fire() bool { return pt.FireFor("") }

// FireFor is Fire for filesystem points: when the point is path-filtered,
// only operations on matching paths draw (and can fire).
func (pt *Point) FireFor(path string) bool {
	if pt == nil {
		return false
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.cfg.PathSuffix != "" && !hasSuffix(path, pt.cfg.PathSuffix) {
		return false
	}
	pt.ops++
	if pt.cfg.MaxFires > 0 && pt.fires >= pt.cfg.MaxFires {
		return false
	}
	// Compare a 53-bit draw against the probability; float64 holds 53 bits
	// exactly, so the comparison is deterministic across platforms.
	draw := float64(pt.next()>>11) / float64(1<<53)
	if draw >= pt.cfg.Prob {
		return false
	}
	pt.fires++
	return true
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

// Err returns a *Fault for op when the point fires, nil otherwise.
func (pt *Point) Err(op string) error { return pt.ErrFor("", op) }

// ErrFor is Err with a path for path-filtered points.
func (pt *Point) ErrFor(path, op string) error {
	if !pt.FireFor(path) {
		return nil
	}
	return pt.fault(op)
}

// fault builds the point's fault error.
func (pt *Point) fault(op string) *Fault {
	return &Fault{Class: pt.cfg.Class, Point: pt.name, Op: op, Err: pt.cfg.Errno}
}

// Pick draws a deterministic index in [0, n). Used to place corruption
// (which byte, which bit) reproducibly. Nil-safe (returns 0).
func (pt *Point) Pick(n int) int {
	if pt == nil || n <= 0 {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return int(pt.next() % uint64(n))
}

// Ops returns how many (matching) operations the point has seen.
func (pt *Point) Ops() int {
	if pt == nil {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.ops
}

// Fires returns how many times the point has fired.
func (pt *Point) Fires() int {
	if pt == nil {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.fires
}
