package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// fireSequence draws n Fire results from a fresh plan's point.
func fireSequence(seed uint64, point string, n int) []bool {
	pt := NewPlan(seed).Arm(point, PointConfig{Prob: 0.3})
	out := make([]bool, n)
	for i := range out {
		out[i] = pt.Fire()
	}
	return out
}

// TestDeterministicStreams: the same seed and point name reproduce the
// same fire sequence, and different seeds or names diverge.
func TestDeterministicStreams(t *testing.T) {
	a := fireSequence(7, "fs.write", 200)
	b := fireSequence(7, "fs.write", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs for identical seed+name", i)
		}
	}
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, fireSequence(8, "fs.write", 200)) {
		t.Error("different seeds produced identical streams")
	}
	if same(a, fireSequence(7, "fs.sync", 200)) {
		t.Error("different point names produced identical streams")
	}
}

// TestPointIndependence: a point's stream depends only on how many
// operations it has seen, not on draws made by other points in between.
func TestPointIndependence(t *testing.T) {
	solo := fireSequence(11, "fs.rename", 100)

	p := NewPlan(11)
	rename := p.Arm("fs.rename", PointConfig{Prob: 0.3})
	other := p.Arm("fs.write", PointConfig{Prob: 0.9})
	for i := 0; i < 100; i++ {
		// Interleave heavy traffic on the other point.
		other.Fire()
		other.Fire()
		if got := rename.Fire(); got != solo[i] {
			t.Fatalf("draw %d changed under interleaved traffic on another point", i)
		}
	}
}

// TestMaxFires bounds the number of fires, not the number of draws.
func TestMaxFires(t *testing.T) {
	pt := NewPlan(3).Arm("fs.sync", PointConfig{Prob: 1, MaxFires: 2})
	fires := 0
	for i := 0; i < 50; i++ {
		if pt.Fire() {
			fires++
		}
	}
	if fires != 2 {
		t.Errorf("fired %d times, want 2", fires)
	}
	if pt.Ops() != 50 {
		t.Errorf("saw %d ops, want 50", pt.Ops())
	}
}

// TestPathSuffix: non-matching paths draw nothing, so the schedule for
// matching paths is independent of unrelated traffic.
func TestPathSuffix(t *testing.T) {
	want := func() []bool {
		pt := NewPlan(5).Arm(PointWrite, PointConfig{Prob: 0.5, PathSuffix: "trace.bin"})
		out := make([]bool, 50)
		for i := range out {
			out[i] = pt.FireFor("/store/run/trace.bin")
		}
		return out
	}()
	pt := NewPlan(5).Arm(PointWrite, PointConfig{Prob: 0.5, PathSuffix: "trace.bin"})
	for i := 0; i < 50; i++ {
		if pt.FireFor("/store/run/manifest.json.tmp123") {
			t.Fatal("fired on a non-matching path")
		}
		if got := pt.FireFor("/store/run/trace.bin"); got != want[i] {
			t.Fatalf("draw %d changed under interleaved non-matching traffic", i)
		}
	}
}

// TestClassOf covers the taxonomy: Fault classes and wrapping, Classifier
// implementations anywhere in the chain, errno mapping, and the Unknown
// fallback.
func TestClassOf(t *testing.T) {
	cases := []struct {
		err  error
		want FaultClass
	}{
		{nil, Unknown},
		{errors.New("mystery"), Unknown},
		{&Fault{Class: Transient, Point: "p"}, Transient},
		{&Fault{Class: Corruption, Point: "p"}, Corruption},
		{fmt.Errorf("wrapped: %w", &Fault{Class: Resource, Point: "p", Err: syscall.ENOSPC}), Resource},
		{syscall.ENOSPC, Resource},
		{fmt.Errorf("op: %w", syscall.EMFILE), Resource},
		{syscall.EDQUOT, Resource},
		{io.ErrShortWrite, Transient},
		{fmt.Errorf("op: %w", syscall.EINTR), Transient},
		{syscall.EAGAIN, Transient},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryTransientOnly: the retry policy retries transient failures with
// doubling backoff and returns every other class immediately.
func TestRetryTransientOnly(t *testing.T) {
	var slept []time.Duration
	pol := RetryPolicy{Attempts: 4, Backoff: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	calls := 0
	err := pol.Do(func() error {
		calls++
		if calls < 3 {
			return &Fault{Class: Transient, Point: "p", Err: syscall.EINTR}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("transient retry: err=%v calls=%d, want success on call 3", err, calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff %v, want [1ms 2ms]", slept)
	}

	calls = 0
	resource := &Fault{Class: Resource, Point: "p", Err: syscall.ENOSPC}
	if err := pol.Do(func() error { calls++; return resource }); err != resource || calls != 1 {
		t.Errorf("resource fault: err=%v calls=%d, want immediate return", err, calls)
	}

	calls = 0
	err = pol.Do(func() error { calls++; return &Fault{Class: Transient, Point: "p"} })
	if err == nil || calls != 4 {
		t.Errorf("persistent transient: err=%v calls=%d, want failure after 4 attempts", err, calls)
	}
}

// TestFSWriteFaults drives the faultFile write paths against a real file:
// outright errors, short writes (prefix persisted, typed transient error),
// and silent single-bit flips.
func TestFSWriteFaults(t *testing.T) {
	payload := []byte("algorithmic profiling event frame payload")

	writeVia := func(t *testing.T, plan *Plan) ([]byte, error) {
		t.Helper()
		dir := t.TempDir()
		path := filepath.Join(dir, "trace.bin")
		f, err := plan.FS(OS()).Create(path)
		if err != nil {
			t.Fatal(err)
		}
		_, werr := f.Write(payload)
		if cerr := f.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data, werr
	}

	t.Run("write-error", func(t *testing.T) {
		plan := NewPlan(1)
		plan.Arm(PointWrite, PointConfig{Prob: 1, Class: Resource, Errno: syscall.ENOSPC})
		data, err := writeVia(t, plan)
		if ClassOf(err) != Resource || !errors.Is(err, syscall.ENOSPC) {
			t.Errorf("err = %v, want typed ENOSPC resource fault", err)
		}
		if len(data) != 0 {
			t.Errorf("write error persisted %d bytes, want none", len(data))
		}
	})

	t.Run("short-write", func(t *testing.T) {
		plan := NewPlan(2)
		plan.Arm(PointShortWrite, PointConfig{Prob: 1, MaxFires: 1})
		data, err := writeVia(t, plan)
		if ClassOf(err) != Transient || !errors.Is(err, io.ErrShortWrite) {
			t.Errorf("err = %v, want typed transient short write", err)
		}
		if len(data) >= len(payload) {
			t.Errorf("short write persisted %d bytes, want a strict prefix of %d", len(data), len(payload))
		}
		if string(data) != string(payload[:len(data)]) {
			t.Error("short write persisted bytes that are not a prefix of the payload")
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		plan := NewPlan(3)
		plan.Arm(PointBitFlip, PointConfig{Prob: 1, MaxFires: 1, Class: Corruption})
		data, err := writeVia(t, plan)
		if err != nil {
			t.Fatalf("bit flip must be silent, got %v", err)
		}
		if len(data) != len(payload) {
			t.Fatalf("persisted %d bytes, want %d", len(data), len(payload))
		}
		flipped := 0
		for i := range data {
			for b := data[i] ^ payload[i]; b != 0; b &= b - 1 {
				flipped++
			}
		}
		if flipped != 1 {
			t.Errorf("%d bits differ, want exactly 1", flipped)
		}
	})
}

// TestFSOperationFaults: each wrapped filesystem operation surfaces its
// point's typed fault.
func TestFSOperationFaults(t *testing.T) {
	dir := t.TempDir()
	arm := func(point string) FS {
		plan := NewPlan(9)
		plan.Arm(point, PointConfig{Prob: 1, Class: Resource, Errno: syscall.EMFILE})
		return plan.FS(OS())
	}
	checks := []struct {
		point string
		op    func(FS) error
	}{
		{PointMkdir, func(f FS) error { return f.MkdirAll(filepath.Join(dir, "sub"), 0o755) }},
		{PointCreate, func(f FS) error { _, err := f.Create(filepath.Join(dir, "x")); return err }},
		{PointCreate, func(f FS) error { _, err := f.CreateTemp(dir, "x*"); return err }},
		{PointRename, func(f FS) error { return f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) }},
		{PointRemove, func(f FS) error { return f.Remove(filepath.Join(dir, "a")) }},
		{PointReadFile, func(f FS) error { _, err := f.ReadFile(filepath.Join(dir, "a")); return err }},
		{PointReadFile, func(f FS) error { _, err := f.Open(filepath.Join(dir, "a")); return err }},
		{PointReadDir, func(f FS) error { _, err := f.ReadDir(dir); return err }},
	}
	for _, c := range checks {
		err := c.op(arm(c.point))
		var fault *Fault
		if !errors.As(err, &fault) || fault.Point != c.point {
			t.Errorf("%s: err = %v, want fault from that point", c.point, err)
			continue
		}
		if ClassOf(err) != Resource || !errors.Is(err, syscall.EMFILE) {
			t.Errorf("%s: err = %v, want typed EMFILE resource fault", c.point, err)
		}
	}
}

// TestNilPlanSafety: a nil plan arms nothing, fires nothing, and wraps
// nothing.
func TestNilPlanSafety(t *testing.T) {
	var p *Plan
	if p.Point("fs.write").Fire() {
		t.Error("nil plan fired")
	}
	if err := p.Point("fs.write").Err("op"); err != nil {
		t.Errorf("nil plan raised %v", err)
	}
	if p.Seed() != 0 {
		t.Error("nil plan has a seed")
	}
	base := OS()
	if got := p.FS(base); got != base {
		t.Error("nil plan wrapped the filesystem")
	}
}
