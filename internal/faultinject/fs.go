package faultinject

import (
	"io"
	"os"
)

// File is the subset of *os.File the trace writer and run store need.
// faultFile wraps it to inject write-path faults.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Chmod(mode os.FileMode) error
	Name() string
}

// FS abstracts the filesystem operations the run store performs so a fault
// plan can interpose on them. OS() is the production implementation;
// Plan.FS wraps any FS with the plan's fs.* injection points.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Mkdir creates exactly one directory and fails with fs.ErrExist if it
	// already exists — the O_EXCL-style reservation primitive the run store
	// uses to make run names create-once under concurrency.
	Mkdir(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens (creating if absent) a file for appending — the
	// write-ahead journal's primitive. Appends go through the same
	// write-path faults as Create'd files.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Open(name string) (io.ReadCloser, error)
	Create(name string) (File, error)
	Stat(name string) (os.FileInfo, error)
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Mkdir(path string, perm os.FileMode) error    { return os.Mkdir(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (io.ReadCloser, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Injection point names consulted by Plan.FS. Arm any subset; unarmed
// points are free.
const (
	PointMkdir      = "fs.mkdir"       // MkdirAll fails
	PointCreate     = "fs.create"      // Create/CreateTemp fails
	PointRename     = "fs.rename"      // Rename fails (atomic-commit seam)
	PointRemove     = "fs.remove"      // Remove fails
	PointReadFile   = "fs.readfile"    // ReadFile fails
	PointReadDir    = "fs.readdir"     // ReadDir fails
	PointWrite      = "fs.write"       // File.Write fails outright
	PointShortWrite = "fs.short-write" // File.Write stops early (io.ErrShortWrite)
	PointBitFlip    = "fs.bitflip"     // File.Write silently flips one bit
	PointSync       = "fs.sync"        // File.Sync fails
)

// Injection point names consulted by the profiling service daemon
// (internal/service). They sit on the two seams the service adds over the
// store: job admission and result persistence. Chaos schedules arm them to
// prove a faulted daemon still lands every job in the ok/degraded/typed-
// failed trichotomy and leaves the store listable.
const (
	// PointServiceIntake fires on job admission, after quota checks and
	// before the job is enqueued: the submission is rejected with the
	// point's typed fault and nothing is queued or stored.
	PointServiceIntake = "service.intake"
	// PointServicePersist fires on a job's result-persist path, before the
	// run is recorded into the store: the job fails typed and the store is
	// left untouched by it.
	PointServicePersist = "service.persist"
)

// FS wraps base with the plan's fs.* injection points. A nil plan returns
// base unchanged.
func (p *Plan) FS(base FS) FS {
	if p == nil {
		return base
	}
	return &faultFS{base: base, plan: p}
}

type faultFS struct {
	base FS
	plan *Plan
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.plan.Point(PointMkdir).ErrFor(path, "mkdir "+path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *faultFS) Mkdir(path string, perm os.FileMode) error {
	if err := f.plan.Point(PointMkdir).ErrFor(path, "mkdir "+path); err != nil {
		return err
	}
	return f.base.Mkdir(path, perm)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.plan.Point(PointRename).ErrFor(newpath, "rename "+oldpath+" -> "+newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.plan.Point(PointRemove).ErrFor(name, "remove "+name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.plan.Point(PointReadFile).ErrFor(name, "read "+name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *faultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.plan.Point(PointReadDir).ErrFor(name, "readdir "+name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error) { return f.base.Stat(name) }

func (f *faultFS) Open(name string) (io.ReadCloser, error) {
	if err := f.plan.Point(PointReadFile).ErrFor(name, "open "+name); err != nil {
		return nil, err
	}
	return f.base.Open(name)
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.plan.Point(PointCreate).ErrFor(dir, "create-temp "+dir); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, plan: f.plan}, nil
}

func (f *faultFS) Create(name string) (File, error) {
	if err := f.plan.Point(PointCreate).ErrFor(name, "create "+name); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, plan: f.plan}, nil
}

func (f *faultFS) OpenAppend(name string) (File, error) {
	if err := f.plan.Point(PointCreate).ErrFor(name, "open-append "+name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, plan: f.plan}, nil
}

// faultFile injects write-path faults: outright write errors, short
// writes, silent single-bit flips, and sync failures. Bit flips corrupt
// the data without reporting an error — the reader's CRC must catch them.
type faultFile struct {
	File
	plan *Plan
}

func (f *faultFile) Write(p []byte) (int, error) {
	name := f.File.Name()
	if err := f.plan.Point(PointWrite).ErrFor(name, "write "+name); err != nil {
		return 0, err
	}
	if pt := f.plan.Point(PointShortWrite); pt.FireFor(name) && len(p) > 0 {
		n := pt.Pick(len(p))
		n, _ = f.File.Write(p[:n])
		return n, &Fault{Class: Transient, Point: PointShortWrite, Op: "write " + name, Err: io.ErrShortWrite}
	}
	if pt := f.plan.Point(PointBitFlip); pt.FireFor(name) && len(p) > 0 {
		q := make([]byte, len(p))
		copy(q, p)
		q[pt.Pick(len(q))] ^= 1 << pt.Pick(8)
		return f.File.Write(q)
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	name := f.File.Name()
	if err := f.plan.Point(PointSync).ErrFor(name, "sync "+name); err != nil {
		return err
	}
	return f.File.Sync()
}
