package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRetryJitterDeterministic: the jittered delays are a pure function
// of (policy, attempt) — the seeded-determinism contract chaos schedules
// rely on — and doubling still dominates the schedule.
func TestRetryJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Backoff: 8 * time.Millisecond, Jitter: 0.5, Seed: 42}
	for i := 0; i < 4; i++ {
		if a, b := p.Delay(i), p.Delay(i); a != b {
			t.Fatalf("Delay(%d) nondeterministic: %v vs %v", i, a, b)
		}
		base := p.Backoff << uint(i)
		d := p.Delay(i)
		if d < base/2 || d > base {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
	if p.Delay(1) <= p.Delay(0)/2 {
		t.Fatalf("doubling lost under jitter: Delay(0)=%v Delay(1)=%v", p.Delay(0), p.Delay(1))
	}
}

// TestRetryJitterDesynchronizes: distinct seeds draw distinct delays, so
// many jobs hitting the same transient fault do not retry in lockstep.
func TestRetryJitterDesynchronizes(t *testing.T) {
	seen := map[time.Duration]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		p := RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond, Jitter: 0.5, Seed: seed}
		seen[p.Delay(0)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("16 seeds produced only %d distinct first delays", len(seen))
	}
}

// TestRetryZeroJitterKeepsDoubling: Jitter 0 reproduces the original
// deterministic doubling schedule exactly.
func TestRetryZeroJitterKeepsDoubling(t *testing.T) {
	p := RetryPolicy{Attempts: 4, Backoff: 3 * time.Millisecond}
	for i, want := range []time.Duration{3, 6, 12} {
		if got := p.Delay(i); got != want*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
}

// TestRetryDoUsesJitteredDelays: Do sleeps exactly the policy's Delay
// sequence.
func TestRetryDoUsesJitteredDelays(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Backoff: 4 * time.Millisecond, Jitter: 0.5, Seed: 7}
	var slept []time.Duration
	p.Sleep = func(d time.Duration) { slept = append(slept, d) }
	calls := 0
	err := p.Do(func() error {
		calls++
		return &Fault{Class: Transient, Point: "test"}
	})
	if err == nil || calls != 3 {
		t.Fatalf("Do: err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 || slept[0] != p.Delay(0) || slept[1] != p.Delay(1) {
		t.Fatalf("slept %v, want [%v %v]", slept, p.Delay(0), p.Delay(1))
	}
}

func netTestServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTransportPartitionAndHeal: a path-filtered net.partition fails only
// the matching host, transiently, until MaxFires heals it.
func TestTransportPartitionAndHeal(t *testing.T) {
	srv := netTestServer(t, "hello")
	other := netTestServer(t, "other")
	plan := NewPlan(1)
	plan.Arm(PointNetPartition, PointConfig{
		Prob: 1, MaxFires: 2, Class: Transient, PathSuffix: strings.TrimPrefix(srv.URL, "http://"),
	})
	client := &http.Client{Transport: plan.Transport(nil)}

	for i := 0; i < 2; i++ {
		if _, err := client.Get(srv.URL); err == nil {
			t.Fatalf("request %d through partition succeeded", i)
		} else if ClassOf(err) != Transient {
			t.Fatalf("partition fault class = %v, want transient", ClassOf(err))
		}
	}
	// The unfiltered host never saw the partition.
	if resp, err := client.Get(other.URL); err != nil {
		t.Fatalf("non-partitioned host failed: %v", err)
	} else {
		resp.Body.Close()
	}
	// Healed: the fire budget is spent.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after heal failed: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(data) != "hello" {
		t.Fatalf("healed response = %q", data)
	}
}

// TestTransportDropIsTransient: net.drop delivers the request (the server
// handler runs) but the caller sees a typed transient failure.
func TestTransportDropIsTransient(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "done")
	}))
	defer srv.Close()
	plan := NewPlan(2)
	plan.Arm(PointNetDrop, PointConfig{Prob: 1, MaxFires: 1, Class: Transient})
	client := &http.Client{Transport: plan.Transport(nil)}
	if _, err := client.Get(srv.URL); ClassOf(err) != Transient {
		t.Fatalf("dropped response: err=%v", err)
	}
	if served != 1 {
		t.Fatalf("server handled %d requests, want 1 (drop loses the response, not the request)", served)
	}
}

// TestTransportCorruptFlipsOneBit: net.corrupt silently flips exactly one
// bit of the response body.
func TestTransportCorruptFlipsOneBit(t *testing.T) {
	// As long as the corruption window, so the drawn offset always lands
	// inside the body and exactly one bit must flip.
	body := strings.Repeat("abcdefgh", corruptWindow/8)
	srv := netTestServer(t, body)
	plan := NewPlan(3)
	plan.Arm(PointNetCorrupt, PointConfig{Prob: 1, MaxFires: 1, Class: Corruption})
	client := &http.Client{Transport: plan.Transport(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("corrupt fetch: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) != len(body) {
		t.Fatalf("corrupt body length %d, want %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^body[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bits, want 1 (body %q)", diff, got)
	}
}

// TestTransportDelayHonorsContext: a delayed request still respects its
// context, failing transiently instead of stalling forever.
func TestTransportDelayHonorsContext(t *testing.T) {
	srv := netTestServer(t, "slow")
	plan := NewPlan(4)
	plan.Arm(PointNetDelay, PointConfig{Prob: 1, Class: Transient})
	client := &http.Client{Transport: plan.Transport(nil), Timeout: 5 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("delayed request inside a 5ms budget succeeded")
	}
	if time.Since(start) > NetDelayMax {
		t.Fatalf("delay ignored the context: took %v", time.Since(start))
	}
}
