package trace

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// Stats summarizes a trace file from its header and index, without
// decoding the event stream.
type Stats struct {
	Version      uint32
	Compressed   bool
	Frames       int
	Records      uint64
	FinalClock   uint64
	Instructions uint64
	// Truncated marks a trace opened through the recovery path: the file
	// has no (or an unreachable) index/trailer — a crashed or aborted
	// recording — and was reconstructed by scanning whole CRC-valid
	// frames. Records/FinalClock/Instructions are zero unless the index
	// itself survived; Replay stops silently at the damage point.
	Truncated bool
}

// Reader decodes one trace file. Open validates the header, trailer, and
// index eagerly; Replay then streams the records through a dispatch
// function in recorded order. Format-v2 traces additionally expose random
// access (ReplayRange, ReplayParallel) via their checkpoint frames and
// integrity proofs via their Merkle footer.
type Reader struct {
	data     []byte // full file contents
	flags    uint32
	dataEnd  int64 // offset of the index frame (end of data frames)
	stats    Stats
	frameOff []int64
	frameRec []uint64 // per-frame record counts from the index

	// Format v2 footer state.
	ckpts     []int  // checkpoint frame indices, ascending
	leaves    []Hash // one Merkle leaf per frame
	root      Hash
	hasMerkle bool
}

// Open reads and validates a trace file.
func Open(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &IOError{Op: "read", Off: 0, Err: err}
	}
	return NewReader(data)
}

// NewReader validates an in-memory trace image. A structurally complete
// trace (header, index, trailer) opens strictly; a file with a valid
// header but a missing or unreachable index/trailer — the footprint of a
// crashed or aborted recording — falls back to frame-scan recovery, and
// the result is marked Stats().Truncated. Only a file whose header is
// itself invalid is refused.
func NewReader(data []byte) (*Reader, error) {
	r, err := newStrictReader(data)
	if err == nil {
		return r, nil
	}
	if rec, rerr := recoverReader(data); rerr == nil {
		return rec, nil
	}
	return nil, err
}

func newStrictReader(data []byte) (*Reader, error) {
	version, flags, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+trailerSize {
		return nil, corruptf("file too short (%d bytes)", len(data))
	}
	trailer := data[len(data)-trailerSize:]
	if string(trailer[8:]) != TrailerMagic {
		return nil, corruptf("bad trailer magic")
	}
	indexOff := binary.LittleEndian.Uint64(trailer[:8])
	if indexOff < headerSize || indexOff > uint64(len(data)-trailerSize) {
		return nil, corruptf("index offset %d out of range", indexOff)
	}
	r := &Reader{data: data, flags: flags, dataEnd: int64(indexOff)}
	r.stats.Version = version
	r.stats.Compressed = flags&FlagCompress != 0
	idx, _, err := readFrame(data, int64(indexOff), false)
	if err != nil {
		return nil, err
	}
	if err := r.parseIndex(idx); err != nil {
		return nil, err
	}
	return r, nil
}

// checkHeader validates the fixed-size file header and returns the format
// version and flags. Both the current version and v1 are accepted; v1
// traces replay sequentially but expose no checkpoints or Merkle footer.
func checkHeader(data []byte) (uint32, uint32, error) {
	if len(data) < headerSize {
		return 0, 0, corruptf("file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != Magic {
		return 0, 0, corruptf("bad magic")
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != Version && version != VersionV1 {
		return 0, 0, corruptf("unsupported version %d (want %d or %d)", version, VersionV1, Version)
	}
	return version, binary.LittleEndian.Uint32(data[12:16]), nil
}

// recoverReader reconstructs a Reader from a trace without a usable
// index/trailer by scanning whole frames from the header forward: each
// frame is accepted only if its envelope parses and its CRC verifies, so
// the scan stops exactly at the torn tail a crash left behind. If the last
// scanned frame turns out to be the index (a complete file missing only
// its trailer), the index's stats are restored; otherwise the frame list
// itself is the recovered extent and the stream totals are unknown.
func recoverReader(data []byte) (*Reader, error) {
	version, flags, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	var offs []int64
	off := int64(headerSize)
	for off < int64(len(data)) {
		// Envelope scan only (compressed=false skips inflation): CRC
		// validity is what certifies the frame boundary.
		_, next, err := readFrame(data, off, false)
		if err != nil {
			break
		}
		offs = append(offs, off)
		off = next
	}
	r := &Reader{data: data, flags: flags, dataEnd: off}
	r.stats.Version = version
	r.stats.Compressed = flags&FlagCompress != 0
	r.stats.Truncated = true
	if n := len(offs); n > 0 {
		// A trace that died between index and trailer: the last frame
		// parses as an index consistent with the frames before it.
		if idx, _, err := readFrame(data, offs[n-1], false); err == nil {
			probe := &Reader{data: data, flags: flags, dataEnd: offs[n-1]}
			probe.stats = r.stats
			if probe.parseIndex(idx) == nil && sameOffsets(probe.frameOff, offs[:n-1]) {
				return probe, nil
			}
		}
	}
	r.stats.Frames = len(offs)
	r.frameOff = offs
	return r, nil
}

// frameErr stamps the containing frame's file offset onto an in-frame
// corruption error that lacks one, so callers learn where the file went
// bad, not just where within a decoded payload.
func frameErr(off int64, err error) error {
	var ce *CorruptError
	if errors.As(err, &ce) && ce.Off < 0 {
		ce.Off = off
	}
	return err
}

func sameOffsets(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// indexData is a parsed index frame, shared by the full Reader and the
// footer-only OpenIndex path.
type indexData struct {
	frameOff     []int64
	frameRec     []uint64
	records      uint64
	finalClock   uint64
	instructions uint64
	ckpts        []int
	leaves       []Hash
	root         Hash
	hasMerkle    bool
}

// parseIndexData decodes an index frame payload. dataEnd bounds the frame
// offsets; version selects whether the v2 tail (checkpoints + Merkle
// section) is required.
func parseIndexData(idx []byte, version uint32, dataEnd int64) (*indexData, error) {
	d := &indexData{}
	nFrames, pos, err := readUint(idx, 0, 1<<32, "frame count")
	if err != nil {
		return nil, err
	}
	d.frameOff = make([]int64, 0, nFrames)
	d.frameRec = make([]uint64, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		var off uint64
		off, pos, err = readUvarint(idx, pos)
		if err != nil {
			return nil, err
		}
		if off < headerSize || int64(off) >= dataEnd {
			return nil, corruptf("frame %d offset %d out of range", i, off)
		}
		d.frameOff = append(d.frameOff, int64(off))
		var recs uint64
		if recs, pos, err = readUvarint(idx, pos); err != nil {
			return nil, err
		}
		d.frameRec = append(d.frameRec, recs)
	}
	if d.records, pos, err = readUvarint(idx, pos); err != nil {
		return nil, err
	}
	if d.finalClock, pos, err = readUvarint(idx, pos); err != nil {
		return nil, err
	}
	if d.instructions, pos, err = readUvarint(idx, pos); err != nil {
		return nil, err
	}
	if version == VersionV1 {
		// v1 indexes end here; anything further would belong to a format
		// this reader predates, so it is ignored, as the v1 reader did.
		return d, nil
	}
	// Format v2 tail: checkpoint frame indices, one Merkle leaf per frame,
	// and the tree root. The tail is mandatory in v2, and strictly sized.
	nCkpts, pos, err := readUint(idx, pos, uint64(nFrames)+1, "checkpoint count")
	if err != nil {
		return nil, err
	}
	d.ckpts = make([]int, 0, nCkpts)
	for i := 0; i < nCkpts; i++ {
		var c int
		if c, pos, err = readUint(idx, pos, uint64(nFrames), "checkpoint frame index"); err != nil {
			return nil, err
		}
		if i > 0 && c <= d.ckpts[i-1] {
			return nil, corruptf("checkpoint frame indices not ascending (%d after %d)", c, d.ckpts[i-1])
		}
		d.ckpts = append(d.ckpts, c)
	}
	need := (nFrames + 1) * HashSize
	if len(idx)-pos != need {
		return nil, corruptf("merkle section is %d bytes, want %d", len(idx)-pos, need)
	}
	d.leaves = make([]Hash, nFrames)
	for i := range d.leaves {
		copy(d.leaves[i][:], idx[pos:])
		pos += HashSize
	}
	copy(d.root[:], idx[pos:])
	d.hasMerkle = true
	return d, nil
}

func (r *Reader) parseIndex(idx []byte) error {
	d, err := parseIndexData(idx, r.stats.Version, r.dataEnd)
	if err != nil {
		return err
	}
	r.frameOff = d.frameOff
	r.frameRec = d.frameRec
	r.stats.Records = d.records
	r.stats.FinalClock = d.finalClock
	r.stats.Instructions = d.instructions
	r.stats.Frames = len(d.frameOff)
	r.ckpts = d.ckpts
	r.leaves = d.leaves
	r.root = d.root
	r.hasMerkle = d.hasMerkle
	return nil
}

// Stats returns the trace summary from the index.
func (r *Reader) Stats() Stats { return r.stats }

// readFrame decodes the frame envelope at off: payload length, CRC check,
// optional decompression. It returns the payload and the offset just past
// the frame.
func readFrame(data []byte, off int64, compressed bool) ([]byte, int64, error) {
	if off < 0 || off >= int64(len(data)) {
		return nil, off, corruptAt(off, "frame offset out of range")
	}
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || plen > maxFramePayload {
		return nil, off, corruptAt(off, "bad frame length")
	}
	pos := off + int64(n)
	if pos+4 > int64(len(data)) {
		return nil, off, corruptAt(off, "truncated frame header")
	}
	sum := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if pos+int64(plen) > int64(len(data)) {
		return nil, off, corruptAt(off, "truncated frame payload")
	}
	payload := data[pos : pos+int64(plen)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, corruptAt(off, "frame CRC mismatch")
	}
	end := pos + int64(plen)
	if compressed {
		fr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(io.LimitReader(fr, maxFramePayload+1))
		if err != nil {
			return nil, off, corruptAt(off, "frame inflate: %v", err)
		}
		if len(raw) > maxFramePayload {
			return nil, off, corruptAt(off, "inflated frame exceeds limit")
		}
		payload = raw
	}
	return payload, end, nil
}

// Replay decodes every data frame in order and hands each reconstructed
// record to dispatch — typically a Synchronous pipeline Transport's
// Dispatch method with the offline backends attached. Heap-journal records
// mutate the shadow heap before being dispatched, so a listener processing
// record k observes exactly the heap state the live listener saw at
// record k (the pipeline Barrier invariant).
func (r *Reader) Replay(dispatch func(*pipeline.Record)) error {
	return r.ReplayContext(context.Background(), dispatch)
}

// ReplayContext is Replay with cooperative cancellation: ctx is checked
// between frames, so a deadline or cancel stops a long replay within one
// frame's worth of work. On a recovered (Stats().Truncated) trace, decode
// damage ends the replay silently instead of failing it: frames are
// dispatched atomically — a frame that does not decode in full is not
// dispatched at all — so listeners always observe a whole-frame prefix of
// the recorded stream.
func (r *Reader) ReplayContext(ctx context.Context, dispatch func(*pipeline.Record)) error {
	heap := shadowHeap{}
	compressed := r.flags&FlagCompress != 0
	off := int64(headerSize)
	for off < r.dataEnd {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload, next, err := readFrame(r.data, off, compressed)
		if err != nil {
			if r.stats.Truncated {
				return nil
			}
			return err
		}
		if len(payload) > 0 && payload[0] == tagCheckpoint {
			// Checkpoint frames carry heap snapshots, not events; sequential
			// replay rebuilds the heap itself, so they are skipped whole.
			off = next
			continue
		}
		if r.stats.Truncated {
			if replayFrameAtomic(payload, heap, dispatch) != nil {
				return nil
			}
		} else if err := replayFrame(payload, heap, dispatch); err != nil {
			return frameErr(off, err)
		}
		off = next
	}
	return nil
}

// replayFrameAtomic decodes a whole frame before dispatching any of it.
// The shadow heap still mutates during the failed decode of a torn frame,
// but no record of that frame reaches the listeners — and the caller stops
// the replay there, so the inconsistency is never observed.
func replayFrameAtomic(b []byte, heap shadowHeap, dispatch func(*pipeline.Record)) error {
	var recs []pipeline.Record
	if err := replayFrame(b, heap, func(r *pipeline.Record) {
		recs = append(recs, *r)
	}); err != nil {
		return err
	}
	for i := range recs {
		dispatch(&recs[i])
	}
	return nil
}

// replayFrame decodes one frame payload. The string table and clock base
// are frame-local, so every frame decodes independently.
func replayFrame(b []byte, heap shadowHeap, dispatch func(*pipeline.Record)) error {
	var strs []string
	var clock uint64
	pos := 0
	for pos < len(b) {
		tag, pos2, err := readByte(b, pos)
		if err != nil {
			return err
		}
		pos = pos2
		if tag == tagStrDef {
			n, pos2, err := readUint(b, pos, maxFramePayload, "string length")
			if err != nil {
				return err
			}
			pos = pos2
			if pos+n > len(b) {
				return corruptf("truncated string at %d", pos)
			}
			strs = append(strs, string(b[pos:pos+n]))
			pos += n
			continue
		}
		op := pipeline.Op(tag)
		if op == pipeline.OpNone || op > pipeline.OpJrnlStore {
			return corruptf("unknown event tag %#x at %d", tag, pos-1)
		}
		delta, pos2, err := readUvarint(b, pos)
		if err != nil {
			return err
		}
		pos = pos2
		clock += delta
		rec := pipeline.Record{Op: op, Clock: clock}
		if pos, err = parseBody(b, pos, &rec, strs); err != nil {
			return err
		}
		if err := bindBody(heap, &rec); err != nil {
			return err
		}
		dispatch(&rec)
	}
	return nil
}

// parseBody reads the op-specific fields of one event into the record. It
// touches no heap state, so frames can be parsed concurrently and out of
// order; bindBody later resolves entity ids in stream order.
func parseBody(b []byte, pos int, rec *pipeline.Record, strs []string) (int, error) {
	var err error
	readID := func() {
		var v int
		if err == nil {
			v, pos, err = readUint(b, pos, 1<<31, "id")
			rec.ID = int32(v)
		}
	}
	readEnt := func(dst *int64) {
		if err != nil {
			return
		}
		var v uint64
		if v, pos, err = readUvarint(b, pos); err != nil {
			return
		}
		*dst = int64(v)
	}
	switch rec.Op {
	case pipeline.OpLoopEntry, pipeline.OpLoopBack, pipeline.OpLoopExit,
		pipeline.OpMethodEntry, pipeline.OpMethodExit:
		readID()
	case pipeline.OpFieldGet:
		readID()
		readEnt(&rec.Ent)
	case pipeline.OpFieldPut:
		readID()
		readEnt(&rec.Ent)
		readEnt(&rec.Aux)
	case pipeline.OpArrayLoad:
		readEnt(&rec.Ent)
	case pipeline.OpArrayStore:
		readEnt(&rec.Ent)
		readEnt(&rec.Aux)
	case pipeline.OpAlloc, pipeline.OpInstr:
		readID()
		readEnt(&rec.Ent)
	case pipeline.OpInputRead, pipeline.OpOutputWrite:
		// No fields.
	case pipeline.OpJrnlAlloc:
		readEnt(&rec.Ent)
		if err != nil {
			return pos, err
		}
		var classID int64
		if classID, pos, err = readVarint(b, pos); err != nil {
			return pos, err
		}
		rec.ID = int32(classID)
		var capacity int
		if capacity, pos, err = readUint(b, pos, maxCapacity+1, "capacity"); err != nil {
			return pos, err
		}
		rec.Aux = int64(capacity)
		if rec.Kx, pos, err = readByte(b, pos); err != nil {
			return pos, err
		}
		if rec.Kx > uint8(events.ElemModeVal) {
			return pos, corruptf("bad element mode %d", rec.Kx)
		}
		var sid int
		if sid, pos, err = readUint(b, pos, uint64(len(strs)), "string id"); err != nil {
			return pos, err
		}
		rec.KS = strs[sid]
	case pipeline.OpJrnlStore:
		readEnt(&rec.Ent)
		readID()
		if err == nil {
			rec.Kx, pos, err = readByte(b, pos)
		}
		if err != nil {
			return pos, err
		}
		switch rec.Kx {
		case pipeline.KeyInt:
			if rec.KI, pos, err = readVarint(b, pos); err != nil {
				return pos, err
			}
		case pipeline.KeyStr:
			var sid int
			if sid, pos, err = readUint(b, pos, uint64(len(strs)), "string id"); err != nil {
				return pos, err
			}
			rec.KS = strs[sid]
		case pipeline.KeyNone:
			readEnt(&rec.Aux)
		default:
			return pos, corruptf("bad store key kind %d", rec.Kx)
		}
	}
	return pos, err
}

// bindBody resolves a parsed record's entity ids against (and mutates) the
// shadow heap, filling E1/E2. It must run in stream order — it is the
// replay half of the pipeline Barrier invariant: a listener processing
// record k observes exactly the heap state the live listener saw there.
func bindBody(heap shadowHeap, rec *pipeline.Record) error {
	switch rec.Op {
	case pipeline.OpFieldGet, pipeline.OpArrayLoad, pipeline.OpAlloc:
		rec.E1 = ent(heap.get(rec.Ent))
	case pipeline.OpFieldPut:
		obj := heap.get(rec.Ent)
		tgt := heap.get(rec.Aux)
		if obj != nil {
			obj.setLink(int(rec.ID), tgt)
		}
		rec.E1, rec.E2 = ent(obj), ent(tgt)
	case pipeline.OpArrayStore:
		rec.E1 = ent(heap.get(rec.Ent))
		rec.E2 = ent(heap.get(rec.Aux))
	case pipeline.OpJrnlAlloc:
		e, err := heap.alloc(rec.Ent, int(rec.ID), int(rec.Aux), events.ElemMode(rec.Kx), rec.KS)
		if err != nil {
			return err
		}
		rec.E1 = e
	case pipeline.OpJrnlStore:
		arr := heap.get(rec.Ent)
		slot := shadowSlot{}
		switch rec.Kx {
		case pipeline.KeyInt:
			slot = shadowSlot{kind: slotInt, i: rec.KI}
		case pipeline.KeyStr:
			slot = shadowSlot{kind: slotStr, s: rec.KS}
		default:
			tgt := heap.get(rec.Aux)
			if tgt != nil {
				slot = shadowSlot{kind: slotRef, ref: tgt}
			}
			rec.E2 = ent(tgt)
		}
		if arr != nil {
			if err := arr.setSlot(int(rec.ID), slot); err != nil {
				return err
			}
		}
		rec.E1 = ent(arr)
	}
	return nil
}
