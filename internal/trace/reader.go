package trace

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// Stats summarizes a trace file from its header and index, without
// decoding the event stream.
type Stats struct {
	Version      uint32
	Compressed   bool
	Frames       int
	Records      uint64
	FinalClock   uint64
	Instructions uint64
	// Truncated marks a trace opened through the recovery path: the file
	// has no (or an unreachable) index/trailer — a crashed or aborted
	// recording — and was reconstructed by scanning whole CRC-valid
	// frames. Records/FinalClock/Instructions are zero unless the index
	// itself survived; Replay stops silently at the damage point.
	Truncated bool
}

// Reader decodes one trace file. Open validates the header, trailer, and
// index eagerly; Replay then streams the records through a dispatch
// function in recorded order.
type Reader struct {
	data     []byte // full file contents
	flags    uint32
	dataEnd  int64 // offset of the index frame (end of data frames)
	stats    Stats
	frameOff []int64
}

// Open reads and validates a trace file.
func Open(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &IOError{Op: "read", Off: 0, Err: err}
	}
	return NewReader(data)
}

// NewReader validates an in-memory trace image. A structurally complete
// trace (header, index, trailer) opens strictly; a file with a valid
// header but a missing or unreachable index/trailer — the footprint of a
// crashed or aborted recording — falls back to frame-scan recovery, and
// the result is marked Stats().Truncated. Only a file whose header is
// itself invalid is refused.
func NewReader(data []byte) (*Reader, error) {
	r, err := newStrictReader(data)
	if err == nil {
		return r, nil
	}
	if rec, rerr := recoverReader(data); rerr == nil {
		return rec, nil
	}
	return nil, err
}

func newStrictReader(data []byte) (*Reader, error) {
	flags, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+trailerSize {
		return nil, corruptf("file too short (%d bytes)", len(data))
	}
	trailer := data[len(data)-trailerSize:]
	if string(trailer[8:]) != TrailerMagic {
		return nil, corruptf("bad trailer magic")
	}
	indexOff := binary.LittleEndian.Uint64(trailer[:8])
	if indexOff < headerSize || indexOff > uint64(len(data)-trailerSize) {
		return nil, corruptf("index offset %d out of range", indexOff)
	}
	r := &Reader{data: data, flags: flags, dataEnd: int64(indexOff)}
	r.stats.Version = Version
	r.stats.Compressed = flags&FlagCompress != 0
	idx, _, err := readFrame(data, int64(indexOff), false)
	if err != nil {
		return nil, err
	}
	if err := r.parseIndex(idx); err != nil {
		return nil, err
	}
	return r, nil
}

// checkHeader validates the fixed-size file header and returns the flags.
func checkHeader(data []byte) (uint32, error) {
	if len(data) < headerSize {
		return 0, corruptf("file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != Magic {
		return 0, corruptf("bad magic")
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != Version {
		return 0, corruptf("unsupported version %d (want %d)", version, Version)
	}
	return binary.LittleEndian.Uint32(data[12:16]), nil
}

// recoverReader reconstructs a Reader from a trace without a usable
// index/trailer by scanning whole frames from the header forward: each
// frame is accepted only if its envelope parses and its CRC verifies, so
// the scan stops exactly at the torn tail a crash left behind. If the last
// scanned frame turns out to be the index (a complete file missing only
// its trailer), the index's stats are restored; otherwise the frame list
// itself is the recovered extent and the stream totals are unknown.
func recoverReader(data []byte) (*Reader, error) {
	flags, err := checkHeader(data)
	if err != nil {
		return nil, err
	}
	var offs []int64
	off := int64(headerSize)
	for off < int64(len(data)) {
		// Envelope scan only (compressed=false skips inflation): CRC
		// validity is what certifies the frame boundary.
		_, next, err := readFrame(data, off, false)
		if err != nil {
			break
		}
		offs = append(offs, off)
		off = next
	}
	r := &Reader{data: data, flags: flags, dataEnd: off}
	r.stats.Version = Version
	r.stats.Compressed = flags&FlagCompress != 0
	r.stats.Truncated = true
	if n := len(offs); n > 0 {
		// A trace that died between index and trailer: the last frame
		// parses as an index consistent with the frames before it.
		if idx, _, err := readFrame(data, offs[n-1], false); err == nil {
			probe := &Reader{data: data, flags: flags, dataEnd: offs[n-1]}
			probe.stats = r.stats
			if probe.parseIndex(idx) == nil && sameOffsets(probe.frameOff, offs[:n-1]) {
				return probe, nil
			}
		}
	}
	r.stats.Frames = len(offs)
	return r, nil
}

// frameErr stamps the containing frame's file offset onto an in-frame
// corruption error that lacks one, so callers learn where the file went
// bad, not just where within a decoded payload.
func frameErr(off int64, err error) error {
	var ce *CorruptError
	if errors.As(err, &ce) && ce.Off < 0 {
		ce.Off = off
	}
	return err
}

func sameOffsets(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *Reader) parseIndex(idx []byte) error {
	nFrames, pos, err := readUint(idx, 0, 1<<32, "frame count")
	if err != nil {
		return err
	}
	r.frameOff = make([]int64, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		var off uint64
		off, pos, err = readUvarint(idx, pos)
		if err != nil {
			return err
		}
		if off < headerSize || int64(off) >= r.dataEnd {
			return corruptf("frame %d offset %d out of range", i, off)
		}
		r.frameOff = append(r.frameOff, int64(off))
		if _, pos, err = readUvarint(idx, pos); err != nil { // record count
			return err
		}
	}
	if r.stats.Records, pos, err = readUvarint(idx, pos); err != nil {
		return err
	}
	if r.stats.FinalClock, pos, err = readUvarint(idx, pos); err != nil {
		return err
	}
	if r.stats.Instructions, _, err = readUvarint(idx, pos); err != nil {
		return err
	}
	r.stats.Frames = nFrames
	return nil
}

// Stats returns the trace summary from the index.
func (r *Reader) Stats() Stats { return r.stats }

// readFrame decodes the frame envelope at off: payload length, CRC check,
// optional decompression. It returns the payload and the offset just past
// the frame.
func readFrame(data []byte, off int64, compressed bool) ([]byte, int64, error) {
	if off < 0 || off >= int64(len(data)) {
		return nil, off, corruptAt(off, "frame offset out of range")
	}
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || plen > maxFramePayload {
		return nil, off, corruptAt(off, "bad frame length")
	}
	pos := off + int64(n)
	if pos+4 > int64(len(data)) {
		return nil, off, corruptAt(off, "truncated frame header")
	}
	sum := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if pos+int64(plen) > int64(len(data)) {
		return nil, off, corruptAt(off, "truncated frame payload")
	}
	payload := data[pos : pos+int64(plen)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, corruptAt(off, "frame CRC mismatch")
	}
	end := pos + int64(plen)
	if compressed {
		fr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(io.LimitReader(fr, maxFramePayload+1))
		if err != nil {
			return nil, off, corruptAt(off, "frame inflate: %v", err)
		}
		if len(raw) > maxFramePayload {
			return nil, off, corruptAt(off, "inflated frame exceeds limit")
		}
		payload = raw
	}
	return payload, end, nil
}

// Replay decodes every data frame in order and hands each reconstructed
// record to dispatch — typically a Synchronous pipeline Transport's
// Dispatch method with the offline backends attached. Heap-journal records
// mutate the shadow heap before being dispatched, so a listener processing
// record k observes exactly the heap state the live listener saw at
// record k (the pipeline Barrier invariant).
func (r *Reader) Replay(dispatch func(*pipeline.Record)) error {
	return r.ReplayContext(context.Background(), dispatch)
}

// ReplayContext is Replay with cooperative cancellation: ctx is checked
// between frames, so a deadline or cancel stops a long replay within one
// frame's worth of work. On a recovered (Stats().Truncated) trace, decode
// damage ends the replay silently instead of failing it: frames are
// dispatched atomically — a frame that does not decode in full is not
// dispatched at all — so listeners always observe a whole-frame prefix of
// the recorded stream.
func (r *Reader) ReplayContext(ctx context.Context, dispatch func(*pipeline.Record)) error {
	heap := shadowHeap{}
	compressed := r.flags&FlagCompress != 0
	off := int64(headerSize)
	for off < r.dataEnd {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload, next, err := readFrame(r.data, off, compressed)
		if err != nil {
			if r.stats.Truncated {
				return nil
			}
			return err
		}
		if r.stats.Truncated {
			if replayFrameAtomic(payload, heap, dispatch) != nil {
				return nil
			}
		} else if err := replayFrame(payload, heap, dispatch); err != nil {
			return frameErr(off, err)
		}
		off = next
	}
	return nil
}

// replayFrameAtomic decodes a whole frame before dispatching any of it.
// The shadow heap still mutates during the failed decode of a torn frame,
// but no record of that frame reaches the listeners — and the caller stops
// the replay there, so the inconsistency is never observed.
func replayFrameAtomic(b []byte, heap shadowHeap, dispatch func(*pipeline.Record)) error {
	var recs []pipeline.Record
	if err := replayFrame(b, heap, func(r *pipeline.Record) {
		recs = append(recs, *r)
	}); err != nil {
		return err
	}
	for i := range recs {
		dispatch(&recs[i])
	}
	return nil
}

// replayFrame decodes one frame payload. The string table and clock base
// are frame-local, so every frame decodes independently.
func replayFrame(b []byte, heap shadowHeap, dispatch func(*pipeline.Record)) error {
	var strs []string
	var clock uint64
	pos := 0
	for pos < len(b) {
		tag, pos2, err := readByte(b, pos)
		if err != nil {
			return err
		}
		pos = pos2
		if tag == tagStrDef {
			n, pos2, err := readUint(b, pos, maxFramePayload, "string length")
			if err != nil {
				return err
			}
			pos = pos2
			if pos+n > len(b) {
				return corruptf("truncated string at %d", pos)
			}
			strs = append(strs, string(b[pos:pos+n]))
			pos += n
			continue
		}
		op := pipeline.Op(tag)
		if op == pipeline.OpNone || op > pipeline.OpJrnlStore {
			return corruptf("unknown event tag %#x at %d", tag, pos-1)
		}
		delta, pos2, err := readUvarint(b, pos)
		if err != nil {
			return err
		}
		pos = pos2
		clock += delta
		rec := pipeline.Record{Op: op, Clock: clock}
		if pos, err = decodeBody(b, pos, &rec, heap, strs); err != nil {
			return err
		}
		dispatch(&rec)
	}
	return nil
}

// decodeBody reads the op-specific fields of one event, resolving entity
// ids against (and mutating) the shadow heap.
func decodeBody(b []byte, pos int, rec *pipeline.Record, heap shadowHeap, strs []string) (int, error) {
	var err error
	readID := func() {
		var v int
		if err == nil {
			v, pos, err = readUint(b, pos, 1<<31, "id")
			rec.ID = int32(v)
		}
	}
	readEnt := func(dst *int64) *shadowEntity {
		if err != nil {
			return nil
		}
		var v uint64
		if v, pos, err = readUvarint(b, pos); err != nil {
			return nil
		}
		*dst = int64(v)
		return heap.get(*dst)
	}
	switch rec.Op {
	case pipeline.OpLoopEntry, pipeline.OpLoopBack, pipeline.OpLoopExit,
		pipeline.OpMethodEntry, pipeline.OpMethodExit:
		readID()
	case pipeline.OpFieldGet:
		readID()
		rec.E1 = ent(readEnt(&rec.Ent))
	case pipeline.OpFieldPut:
		readID()
		obj := readEnt(&rec.Ent)
		tgt := readEnt(&rec.Aux)
		if err == nil && obj != nil {
			obj.setLink(int(rec.ID), tgt)
		}
		rec.E1, rec.E2 = ent(obj), ent(tgt)
	case pipeline.OpArrayLoad:
		rec.E1 = ent(readEnt(&rec.Ent))
	case pipeline.OpArrayStore:
		rec.E1 = ent(readEnt(&rec.Ent))
		rec.E2 = ent(readEnt(&rec.Aux))
	case pipeline.OpAlloc, pipeline.OpInstr:
		readID()
		if rec.Op == pipeline.OpAlloc {
			rec.E1 = ent(readEnt(&rec.Ent))
		} else if err == nil {
			var v uint64
			if v, pos, err = readUvarint(b, pos); err == nil {
				rec.Ent = int64(v)
			}
		}
	case pipeline.OpInputRead, pipeline.OpOutputWrite:
		// No fields.
	case pipeline.OpJrnlAlloc:
		var id uint64
		if id, pos, err = readUvarint(b, pos); err != nil {
			return pos, err
		}
		rec.Ent = int64(id)
		var classID int64
		if classID, pos, err = readVarint(b, pos); err != nil {
			return pos, err
		}
		rec.ID = int32(classID)
		var capacity int
		if capacity, pos, err = readUint(b, pos, maxCapacity+1, "capacity"); err != nil {
			return pos, err
		}
		rec.Aux = int64(capacity)
		if rec.Kx, pos, err = readByte(b, pos); err != nil {
			return pos, err
		}
		if rec.Kx > uint8(events.ElemModeVal) {
			return pos, corruptf("bad element mode %d", rec.Kx)
		}
		var sid int
		if sid, pos, err = readUint(b, pos, uint64(len(strs)), "string id"); err != nil {
			return pos, err
		}
		rec.KS = strs[sid]
		e, aerr := heap.alloc(rec.Ent, int(classID), capacity, events.ElemMode(rec.Kx), rec.KS)
		if aerr != nil {
			return pos, aerr
		}
		rec.E1 = e
	case pipeline.OpJrnlStore:
		arr := readEnt(&rec.Ent)
		readID()
		if err == nil {
			rec.Kx, pos, err = readByte(b, pos)
		}
		if err != nil {
			return pos, err
		}
		slot := shadowSlot{}
		switch rec.Kx {
		case pipeline.KeyInt:
			if rec.KI, pos, err = readVarint(b, pos); err != nil {
				return pos, err
			}
			slot = shadowSlot{kind: slotInt, i: rec.KI}
		case pipeline.KeyStr:
			var sid int
			if sid, pos, err = readUint(b, pos, uint64(len(strs)), "string id"); err != nil {
				return pos, err
			}
			rec.KS = strs[sid]
			slot = shadowSlot{kind: slotStr, s: rec.KS}
		case pipeline.KeyNone:
			tgt := readEnt(&rec.Aux)
			if err != nil {
				return pos, err
			}
			if tgt != nil {
				slot = shadowSlot{kind: slotRef, ref: tgt}
			}
			rec.E2 = ent(tgt)
		default:
			return pos, corruptf("bad store key kind %d", rec.Kx)
		}
		if arr != nil {
			if serr := arr.setSlot(int(rec.ID), slot); serr != nil {
				return pos, serr
			}
		}
		rec.E1 = ent(arr)
	}
	return pos, err
}
