package trace

import (
	"bytes"
	"errors"
	"testing"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// sampleRecords exercises every op's encoding: frame-local string interning
// (the array type name and string element repeat), signed class ids,
// every journal store key kind, and clock deltas.
func sampleRecords() []pipeline.Record {
	return []pipeline.Record{
		{Op: pipeline.OpMethodEntry, Clock: 1, ID: 2},
		{Op: pipeline.OpJrnlAlloc, Clock: 3, ID: -1, Ent: 1, Aux: 4,
			Kx: uint8(events.ElemModeAuto), KS: "Object[]"},
		{Op: pipeline.OpJrnlAlloc, Clock: 4, ID: 7, Ent: 2, Aux: 3,
			Kx: uint8(events.ElemModeAuto), KS: "Node"},
		{Op: pipeline.OpJrnlStore, Clock: 5, Ent: 1, ID: 0, Kx: pipeline.KeyInt, KI: -7},
		{Op: pipeline.OpJrnlStore, Clock: 6, Ent: 1, ID: 1, Kx: pipeline.KeyStr, KS: "hello"},
		{Op: pipeline.OpJrnlStore, Clock: 7, Ent: 1, ID: 2, Kx: pipeline.KeyNone, Aux: 2},
		{Op: pipeline.OpArrayStore, Clock: 8, Ent: 1, Aux: 2},
		{Op: pipeline.OpArrayLoad, Clock: 9, Ent: 1},
		{Op: pipeline.OpFieldPut, Clock: 10, ID: 3, Ent: 2, Aux: 1},
		{Op: pipeline.OpFieldGet, Clock: 11, ID: 3, Ent: 2},
		{Op: pipeline.OpAlloc, Clock: 12, ID: 7, Ent: 2},
		{Op: pipeline.OpInstr, Clock: 13, ID: 5, Ent: 42},
		{Op: pipeline.OpInputRead, Clock: 14},
		{Op: pipeline.OpOutputWrite, Clock: 15},
		{Op: pipeline.OpLoopEntry, Clock: 16, ID: 4},
		{Op: pipeline.OpLoopBack, Clock: 17, ID: 4},
		{Op: pipeline.OpLoopExit, Clock: 18, ID: 4},
		{Op: pipeline.OpJrnlStore, Clock: 19, Ent: 1, ID: 0, Kx: pipeline.KeyStr, KS: "hello"},
		{Op: pipeline.OpMethodExit, Clock: 20, ID: 2},
	}
}

// buildTrace encodes recs into a complete trace image.
func buildTrace(tb testing.TB, opts WriterOptions, recs []pipeline.Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	tw := NewWriter(&buf, opts)
	for i := range recs {
		tw.Record(&recs[i])
	}
	tw.SetInstructions(20)
	if err := tw.Close(); err != nil {
		tb.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTrip writes every record shape and reads the stream back,
// checking fields survive unchanged. A tiny frame size forces many frame
// cuts so the frame-local string table and clock base reset repeatedly.
func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	for _, opts := range []WriterOptions{
		{},
		{Compress: true},
		{FrameSize: 8},
		{FrameSize: 8, Compress: true},
	} {
		data := buildTrace(t, opts, recs)
		r, err := NewReader(data)
		if err != nil {
			t.Fatalf("opts=%+v: NewReader: %v", opts, err)
		}
		st := r.Stats()
		if st.Records != uint64(len(recs)) || st.FinalClock != 20 || st.Instructions != 20 {
			t.Errorf("opts=%+v: stats = %+v", opts, st)
		}
		var got []pipeline.Record
		err = r.Replay(func(rec *pipeline.Record) {
			c := *rec
			c.E1, c.E2 = nil, nil // pointer identity is per-replay
			got = append(got, c)
		})
		if err != nil {
			t.Fatalf("opts=%+v: Replay: %v", opts, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("opts=%+v: replayed %d records, want %d", opts, len(got), len(recs))
		}
		for i, want := range recs {
			g := got[i]
			if g.Op != want.Op || g.Clock != want.Clock || g.ID != want.ID ||
				g.Ent != want.Ent || g.Aux != want.Aux || g.Kx != want.Kx ||
				g.KI != want.KI || g.KS != want.KS {
				t.Errorf("opts=%+v: record %d = %+v, want %+v", opts, i, g, want)
			}
		}
	}
}

// TestReplayRebuildsEntities checks the shadow heap: journaled allocations
// surface as live entities on subsequent events, with the recorded type
// name, class, and element contents.
func TestReplayRebuildsEntities(t *testing.T) {
	data := buildTrace(t, WriterOptions{}, sampleRecords())
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var arr, node events.Entity
	err = r.Replay(func(rec *pipeline.Record) {
		switch {
		case rec.Op == pipeline.OpArrayLoad:
			arr = rec.E1
		case rec.Op == pipeline.OpAlloc:
			node = rec.E1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr == nil || node == nil {
		t.Fatalf("entities not resolved: arr=%v node=%v", arr, node)
	}
	if arr.TypeName() != "Object[]" || !arr.IsArray() || arr.Capacity() != 4 {
		t.Errorf("array = %s capacity %d (array=%v)", arr.TypeName(), arr.Capacity(), arr.IsArray())
	}
	if node.TypeName() != "Node" || node.ClassID() != 7 {
		t.Errorf("node = %s class %d", node.TypeName(), node.ClassID())
	}
	// Element contents: slot 0 was first an int and later overwritten with
	// "hello" (string key), slot 1 holds "hello", slot 2 a ref; the
	// untouched fourth slot is skipped in auto mode.
	var keys []events.ElemKey
	arr.ForEachElemKey(func(k events.ElemKey) { keys = append(keys, k) })
	if len(keys) != 3 {
		t.Fatalf("ForEachElemKey visited %d slots, want 3: %v", len(keys), keys)
	}
	if s, ok := keys[0].(string); !ok || s != "hello" {
		t.Errorf("slot 0 = %v, want \"hello\"", keys[0])
	}
	var refs int
	arr.ForEachRef(func(int, events.Entity) { refs++ })
	if refs != 1 {
		t.Errorf("array holds %d refs, want 1", refs)
	}
}

// TestTruncated chops a valid trace at every length. Prefixes shorter than
// the header must fail cleanly; anything longer must open through recovery,
// be marked Truncated, and replay a whole-frame prefix of the original
// stream — monotonically growing with the cut point, never a panic.
func TestTruncated(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 8}, sampleRecords())
	full, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var want []pipeline.Record
	if err := full.Replay(func(r *pipeline.Record) { want = append(want, *r) }); err != nil {
		t.Fatal(err)
	}
	prev := 0
	for n := 0; n < len(data); n++ {
		r, err := NewReader(data[:n])
		if n < headerSize {
			if err == nil {
				t.Fatalf("NewReader accepted %d-byte prefix (shorter than the header)", n)
			}
			continue
		}
		if err != nil {
			t.Fatalf("prefix %d/%d: open = %v, want recovery", n, len(data), err)
		}
		if !r.Stats().Truncated {
			t.Fatalf("prefix %d/%d: recovered reader not marked Truncated", n, len(data))
		}
		var got []pipeline.Record
		if err := r.Replay(func(rec *pipeline.Record) { got = append(got, *rec) }); err != nil {
			t.Fatalf("prefix %d/%d: replay = %v, want clean partial stop", n, len(data), err)
		}
		if len(got) > len(want) || len(got) < prev {
			t.Fatalf("prefix %d/%d: %d records (full %d, shorter prefix had %d)",
				n, len(data), len(got), len(want), prev)
		}
		prev = len(got)
		for i := range got {
			g, w := got[i], want[i]
			if g.Op != w.Op || g.Clock != w.Clock || g.ID != w.ID ||
				g.Ent != w.Ent || g.Aux != w.Aux || g.Kx != w.Kx ||
				g.KI != w.KI || g.KS != w.KS {
				t.Fatalf("prefix %d/%d: record %d = %+v, want %+v", n, len(data), i, g, w)
			}
		}
	}
}

// TestCorruptCRC flips one payload byte in each frame and requires the
// frame CRC to reject it with ErrCorrupt.
func TestCorruptCRC(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 8}, sampleRecords())
	// Flip a byte a few positions into the first frame's payload.
	corrupted := append([]byte(nil), data...)
	corrupted[headerSize+6] ^= 0xFF
	r, err := NewReader(corrupted)
	if err == nil {
		err = r.Replay(func(*pipeline.Record) {})
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted payload: err = %v, want ErrCorrupt", err)
	}
}

// TestBadHeader rejects wrong magic, wrong version, and wrong trailer.
func TestBadHeader(t *testing.T) {
	data := buildTrace(t, WriterOptions{}, sampleRecords())

	wrongMagic := append([]byte(nil), data...)
	wrongMagic[0] = 'X'
	if _, err := NewReader(wrongMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}

	wrongVersion := append([]byte(nil), data...)
	wrongVersion[8] = 99
	if _, err := NewReader(wrongVersion); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad version: err = %v, want ErrCorrupt", err)
	}

	// A damaged trailer is no longer fatal: the frames and index are
	// intact, so the reader recovers the full stream and flags it.
	wrongTrailer := append([]byte(nil), data...)
	wrongTrailer[len(wrongTrailer)-1] = '?'
	r, err := NewReader(wrongTrailer)
	if err != nil {
		t.Fatalf("bad trailer: err = %v, want recovery", err)
	}
	if !r.Stats().Truncated {
		t.Error("bad trailer: recovered reader not marked Truncated")
	}
	intact, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := intact.Stats().Records; r.Stats().Records != want {
		t.Errorf("bad trailer: recovered records = %d, want %d (index survived)",
			r.Stats().Records, want)
	}

	if _, err := NewReader(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty input: err = %v, want ErrCorrupt", err)
	}
}

// TestStoreBeyondCapacity rejects a journaled element store past the
// entity's recorded capacity instead of growing without bound.
func TestStoreBeyondCapacity(t *testing.T) {
	recs := []pipeline.Record{
		{Op: pipeline.OpJrnlAlloc, Clock: 1, ID: -1, Ent: 1, Aux: 2,
			Kx: uint8(events.ElemModeVal), KS: "int[]"},
		{Op: pipeline.OpJrnlStore, Clock: 2, Ent: 1, ID: 5, Kx: pipeline.KeyInt, KI: 1},
	}
	data := buildTrace(t, WriterOptions{}, recs)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Replay(func(*pipeline.Record) {})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-capacity store: err = %v, want ErrCorrupt", err)
	}
}

// FuzzReplay is the decoder's no-panic contract: arbitrary bytes must
// produce either a decoded stream or an error, never a crash or unbounded
// allocation. The seed corpus (testdata/fuzz/FuzzReplay) covers a valid
// trace, a truncated one, and a CRC-corrupted one.
func FuzzReplay(f *testing.F) {
	valid := buildTrace(f, WriterOptions{FrameSize: 8}, sampleRecords())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	corrupted[headerSize+6] ^= 0xFF
	f.Add(corrupted)
	f.Add(buildTrace(f, WriterOptions{Compress: true}, sampleRecords()))
	f.Add([]byte(Magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		var n int
		_ = r.Replay(func(*pipeline.Record) { n++ })
	})
}
