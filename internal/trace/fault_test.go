package trace

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"algoprof/internal/events/pipeline"
	"algoprof/internal/faultinject"
)

// failAfter is an io.Writer that accepts n bytes, then fails every write
// with err.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterIOErrorOffset: a failing sink surfaces through the writer as a
// typed *IOError carrying the file offset of the failed write, with the
// raw cause intact for errors.Is.
func TestWriterIOErrorOffset(t *testing.T) {
	cause := fmt.Errorf("sink: %w", io.ErrClosedPipe)
	sink := &failAfter{n: 32, err: cause}
	tw := NewWriter(sink, WriterOptions{FrameSize: 8})
	recs := sampleRecords()
	for i := range recs {
		tw.Record(&recs[i])
	}
	err := tw.Close()
	if err == nil {
		t.Fatal("writer over failing sink closed clean")
	}
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("err = %v (%T), want *IOError", err, err)
	}
	if ioe.Op != "write" {
		t.Errorf("Op = %q, want write", ioe.Op)
	}
	if ioe.Off < 0 || ioe.Off > 32 {
		t.Errorf("Off = %d, want the offset of the failed write (0..32)", ioe.Off)
	}
	if !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("err = %v, want the sink's cause in the chain", err)
	}
}

// TestCorruptErrorOffset: frame corruption reports the offset of the
// offending frame, classifies as a corruption fault, and still matches
// ErrCorrupt.
func TestCorruptErrorOffset(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 8}, sampleRecords())
	corrupted := append([]byte(nil), data...)
	corrupted[headerSize+6] ^= 0xFF
	r, err := NewReader(corrupted)
	if err == nil {
		err = r.Replay(func(*pipeline.Record) {})
	}
	if err == nil {
		t.Fatal("corrupted frame replayed clean")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CorruptError", err, err)
	}
	if ce.Off != int64(headerSize) {
		t.Errorf("Off = %d, want the corrupted frame's offset %d", ce.Off, headerSize)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Error("corruption error does not match ErrCorrupt")
	}
	if got := faultinject.ClassOf(err); got != faultinject.Corruption {
		t.Errorf("ClassOf = %v, want corruption", got)
	}
}

// TestShortWriteTransient: a short write from the sink classifies as
// transient — the caller's retry policy is allowed to rewrite the file.
func TestShortWriteTransient(t *testing.T) {
	sink := &failAfter{n: 4, err: io.ErrShortWrite}
	tw := NewWriter(sink, WriterOptions{})
	recs := sampleRecords()
	for i := range recs {
		tw.Record(&recs[i])
	}
	err := tw.Close()
	if err == nil {
		t.Fatal("writer over short-writing sink closed clean")
	}
	if got := faultinject.ClassOf(err); got != faultinject.Transient {
		t.Errorf("ClassOf = %v, want transient", got)
	}
}
