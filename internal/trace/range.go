package trace

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"algoprof/internal/events/pipeline"
)

// chunkFrames is how many frames one parallel-replay work unit covers.
// Frames parse independently (string tables and clock bases are
// frame-local), so the chunk size only balances scheduling overhead against
// load skew.
const chunkFrames = 8

// NumFrames returns how many frames the trace holds (data and checkpoint
// frames both count; frame indices given to ReplayRange and ProveRange are
// positions in this sequence).
func (r *Reader) NumFrames() int { return len(r.frameOff) }

// Checkpoints returns the frame indices of the trace's heap-checkpoint
// frames, ascending. Empty for v1 traces and recovered (truncated) traces.
func (r *Reader) Checkpoints() []int {
	return append([]int(nil), r.ckpts...)
}

// framePayload reads and (if the trace is compressed) inflates frame f.
func (r *Reader) framePayload(f int) ([]byte, error) {
	payload, _, err := readFrame(r.data, r.frameOff[f], r.flags&FlagCompress != 0)
	return payload, err
}

// ReplayRange replays only the records of frames [lo, hi), dispatching them
// in recorded order. The shadow heap is seeded from the nearest checkpoint
// frame at or before lo, and the remaining prefix frames are decoded
// silently (heap mutations only, nothing dispatched), so the cost of a
// range replay is O(hi-lo + distance to the previous checkpoint) frames —
// not O(hi). On a v1 trace, which has no checkpoints, the silent catch-up
// starts at frame 0: correct, but the slow path.
//
// Listeners observe exactly what they would observe during the [lo, hi)
// stretch of a full Replay: the heap at each record is the true sequential
// heap state there.
func (r *Reader) ReplayRange(ctx context.Context, lo, hi int, dispatch func(*pipeline.Record)) error {
	n := len(r.frameOff)
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("trace: frame range [%d,%d) out of bounds (trace has %d frames)", lo, hi, n)
	}
	heap := shadowHeap{}
	start := 0
	// The last checkpoint frame c ≤ lo holds the heap state after every
	// record of frames [0, c) — checkpoint frames themselves carry none.
	best := -1
	for _, c := range r.ckpts {
		if c > lo {
			break
		}
		best = c
	}
	if best >= 0 {
		payload, err := r.framePayload(best)
		if err != nil {
			return err
		}
		if len(payload) == 0 || payload[0] != tagCheckpoint {
			return frameErr(r.frameOff[best], corruptf("frame %d is not a checkpoint", best))
		}
		if heap, err = decodeCheckpoint(payload); err != nil {
			return frameErr(r.frameOff[best], err)
		}
		start = best + 1
	}
	discard := func(*pipeline.Record) {}
	for f := start; f < hi; f++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload, err := r.framePayload(f)
		if err != nil {
			return err
		}
		if len(payload) > 0 && payload[0] == tagCheckpoint {
			continue
		}
		d := dispatch
		if f < lo {
			d = discard
		}
		if err := replayFrame(payload, heap, d); err != nil {
			return frameErr(r.frameOff[f], err)
		}
	}
	return nil
}

// parsedFrame is one frame's records, parsed but not yet bound to a heap.
type parsedFrame struct {
	off  int64 // file offset, for error attribution
	recs []pipeline.Record
}

// chunkResult is one parallel work unit's output: the frames parsed before
// the first failure, plus that failure (nil if the whole chunk parsed).
type chunkResult struct {
	frames []parsedFrame
	err    error
}

// parseFrame decodes one frame payload into records without a heap,
// returning the records parsed before any error.
func parseFrame(b []byte) ([]pipeline.Record, error) {
	var recs []pipeline.Record
	var strs []string
	var clock uint64
	pos := 0
	for pos < len(b) {
		tag, pos2, err := readByte(b, pos)
		if err != nil {
			return recs, err
		}
		pos = pos2
		if tag == tagStrDef {
			n, pos2, err := readUint(b, pos, maxFramePayload, "string length")
			if err != nil {
				return recs, err
			}
			pos = pos2
			if pos+n > len(b) {
				return recs, corruptf("truncated string at %d", pos)
			}
			strs = append(strs, string(b[pos:pos+n]))
			pos += n
			continue
		}
		op := pipeline.Op(tag)
		if op == pipeline.OpNone || op > pipeline.OpJrnlStore {
			return recs, corruptf("unknown event tag %#x at %d", tag, pos-1)
		}
		delta, pos2, err := readUvarint(b, pos)
		if err != nil {
			return recs, err
		}
		pos = pos2
		clock += delta
		rec := pipeline.Record{Op: op, Clock: clock}
		if pos, err = parseBody(b, pos, &rec, strs); err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// parseChunk parses frames [lo, hi), skipping checkpoint frames. It runs to
// completion once claimed — a chunk is small, bounded work, and finishing it
// keeps the merged stream's error prefix deterministic: cancellation acts at
// the feeder (no new chunks) and the merger, never mid-chunk.
func (r *Reader) parseChunk(lo, hi int) chunkResult {
	var out chunkResult
	for f := lo; f < hi; f++ {
		payload, err := r.framePayload(f)
		if err != nil {
			out.err = err
			return out
		}
		if len(payload) > 0 && payload[0] == tagCheckpoint {
			continue
		}
		recs, err := parseFrame(payload)
		out.frames = append(out.frames, parsedFrame{off: r.frameOff[f], recs: recs})
		if err != nil {
			out.err = frameErr(r.frameOff[f], err)
			return out
		}
	}
	return out
}

// ReplayParallel is Replay with the per-frame decode work — CRC checks,
// DEFLATE inflation, varint and string-table parsing — fanned out over
// workers goroutines (≤ 0 means GOMAXPROCS). Dispatch order, heap
// mutations, and error behavior are byte-identical to Replay: frames parse
// concurrently into record buffers, and a single merger then binds entity
// ids against one shadow heap and dispatches strictly in recorded order, so
// a listener that walks the entity graph at record k still observes exactly
// the sequential heap state at k (the pipeline Barrier invariant).
//
// The first failing chunk cancels its siblings through the context; the
// merger surfaces that first error in stream order. In-flight chunks are
// bounded at 2× workers, so memory stays bounded on long traces.
//
// v1 and recovered (truncated) traces fall back to sequential
// ReplayContext, as does workers == 1.
func (r *Reader) ReplayParallel(ctx context.Context, workers int, dispatch func(*pipeline.Record)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(r.frameOff)
	if workers == 1 || r.stats.Truncated || r.stats.Version == VersionV1 || n <= chunkFrames {
		return r.ReplayContext(ctx, dispatch)
	}
	var wg sync.WaitGroup
	workersDone := make(chan struct{})
	ctx, cancel := context.WithCancelCause(ctx)
	defer func() {
		cancel(nil) // unblock the feeder and workers before waiting for them
		wg.Wait()
		<-workersDone
	}()

	nChunks := (n + chunkFrames - 1) / chunkFrames
	results := make([]chan chunkResult, nChunks)
	for i := range results {
		results[i] = make(chan chunkResult, 1)
	}
	jobs := make(chan int)
	tokens := make(chan struct{}, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := r.parseChunk(i*chunkFrames, min((i+1)*chunkFrames, n))
				results[i] <- res
				if res.err != nil {
					cancel(res.err)
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < nChunks; i++ {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { wg.Wait(); close(workersDone) }()

	heap := shadowHeap{}
	for i := 0; i < nChunks; i++ {
		if ctx.Err() != nil {
			cause := context.Cause(ctx)
			if errors.Is(cause, context.Canceled) || errors.Is(cause, context.DeadlineExceeded) {
				// The caller cancelled; stop merging immediately.
				return cause
			}
			// A worker hit a real failure in a LATER chunk. Keep merging:
			// every chunk before it was already claimed (jobs go out in
			// order) and will arrive, so the dispatched prefix stays
			// identical to a sequential replay's, ending at the failure.
		}
		var res chunkResult
		// A cancelled context does NOT mean chunk i is lost — only once all
		// workers have exited can an absent result never arrive.
		select {
		case res = <-results[i]:
		case <-workersDone:
			select {
			case res = <-results[i]:
			default:
				// Chunk i was never claimed: the feeder stopped on
				// cancellation before dispatching it.
				return context.Cause(ctx)
			}
		}
		<-tokens
		for _, pf := range res.frames {
			for j := range pf.recs {
				rec := &pf.recs[j]
				if err := bindBody(heap, rec); err != nil {
					cancel(err)
					return frameErr(pf.off, err)
				}
				dispatch(rec)
			}
		}
		if res.err != nil {
			cancel(res.err)
			return res.err
		}
	}
	return nil
}
