package trace

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"algoprof/internal/events/pipeline"
	"algoprof/internal/faultinject"
)

// TestMerkleProofExhaustive checks every (n, lo, hi) combination up to a
// tree of 17 leaves: the proof must verify against the true leaves and must
// reject any tampered leaf in range.
func TestMerkleProofExhaustive(t *testing.T) {
	for n := 1; n <= 17; n++ {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = leafHash([]byte{byte(i), byte(n), 0x5a})
		}
		levels := buildLevels(leaves)
		root := merkleRoot(leaves)
		for lo := 0; lo < n; lo++ {
			for hi := lo + 1; hi <= n; hi++ {
				proof := proveRange(levels, lo, hi)
				if err := VerifyRangeProof(root, lo, hi, leaves[lo:hi], proof); err != nil {
					t.Fatalf("n=%d [%d,%d): valid proof rejected: %v", n, lo, hi, err)
				}
				bad := append([]Hash(nil), leaves[lo:hi]...)
				bad[(hi-lo-1)/2][0] ^= 0xFF
				if err := VerifyRangeProof(root, lo, hi, bad, proof); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("n=%d [%d,%d): tampered leaf accepted (err=%v)", n, lo, hi, err)
				}
			}
		}
	}
}

// writeTempTrace writes a built trace to a file for the file-based APIs.
func writeTempTrace(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

// reframe replaces the payload of the frame at off with p, recomputing the
// CRC. The new payload must encode to the same total frame size, so file
// offsets elsewhere stay valid.
func reframe(t *testing.T, data []byte, off int64, p []byte) {
	t.Helper()
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || int(plen) != len(p) {
		t.Fatalf("reframe at %d: payload %d bytes, frame holds %d", off, len(p), plen)
	}
	pos := off + int64(n)
	binary.LittleEndian.PutUint32(data[pos:], crc32.ChecksumIEEE(p))
	copy(data[pos+4:], p)
}

func TestOpenIndexMatchesReader(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4}, manyRecords(600))
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	ix, err := OpenIndex(writeTempTrace(t, data))
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if ix.Version != Version || ix.Frames != r.NumFrames() || ix.Records != r.Stats().Records {
		t.Fatalf("index mismatch: %+v vs frames=%d records=%d", ix, r.NumFrames(), r.Stats().Records)
	}
	root, ok := r.MerkleRoot()
	if !ok || !ix.HasMerkle || ix.Root != root {
		t.Fatalf("merkle root mismatch: index %x reader %x (ok=%v)", ix.Root, root, ok)
	}
	if got, want := fmt.Sprint(ix.Checkpoints), fmt.Sprint(r.Checkpoints()); got != want {
		t.Fatalf("checkpoints: index %s reader %s", got, want)
	}
	if ix.BytesRead >= ix.FileSize {
		t.Fatalf("OpenIndex read %d of %d bytes — not footer-only", ix.BytesRead, ix.FileSize)
	}
}

func TestVerifyFileRange(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4}, manyRecords(600))
	path := writeTempTrace(t, data)
	ix, err := OpenIndex(path)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	n := ix.Frames
	if n < 8 {
		t.Fatalf("trace too small for the test: %d frames", n)
	}
	for _, w := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {n / 3, 2 * n / 3}} {
		rc, err := VerifyFileRange(path, w[0], w[1])
		if err != nil {
			t.Fatalf("VerifyFileRange[%d,%d): %v", w[0], w[1], err)
		}
		if rc.BytesRead >= rc.FileSize && w[1]-w[0] < n {
			t.Fatalf("[%d,%d): read the whole file (%d bytes)", w[0], w[1], rc.BytesRead)
		}
	}
	if _, err := VerifyFileRange(path, 2, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty range: got %v", err)
	}
	if _, err := VerifyFileRange(path, 0, n+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out of bounds: got %v", err)
	}

	// A flipped payload byte inside the range must be caught...
	mid := n / 2
	evil := append([]byte(nil), data...)
	evil[ix.FrameOff[mid]+6] ^= 0xFF
	evilPath := writeTempTrace(t, evil)
	if _, err := VerifyFileRange(evilPath, mid, mid+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption in range: got %v", err)
	}
	// ...and damage OUTSIDE the verified range must not fail the proof.
	if _, err := VerifyFileRange(evilPath, 0, mid); err != nil {
		t.Fatalf("range before the damage should verify: %v", err)
	}

	// A tampered SIBLING leaf in the footer (CRC fixed up, so the index
	// parses) must fail the proof: the recombined root no longer matches.
	// (An in-range footer leaf is unused — the proof hashes the actual
	// frame bytes — so tampering there changes nothing, correctly.)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	idxPayload, _, err := readFrame(data, r.dataEnd, false)
	if err != nil {
		t.Fatalf("read index frame: %v", err)
	}
	tampered := append([]byte(nil), data...)
	badIdx := append([]byte(nil), idxPayload...)
	// Leaves sit right before the trailing 32-byte root; flip the first
	// byte of leaf mid+1, a proof sibling for [mid, mid+1).
	badIdx[len(badIdx)-HashSize-HashSize*(n-mid-1)] ^= 0xFF
	reframe(t, tampered, r.dataEnd, badIdx)
	if _, err := VerifyFileRange(writeTempTrace(t, tampered), mid, mid+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered sibling leaf: got %v", err)
	}

	// A tampered root fails even a fully intact range.
	rooted := append([]byte(nil), data...)
	badRoot := append([]byte(nil), idxPayload...)
	badRoot[len(badRoot)-1] ^= 0xFF
	reframe(t, rooted, r.dataEnd, badRoot)
	if _, err := VerifyFileRange(writeTempTrace(t, rooted), 0, n); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered root: got %v", err)
	}
}

func TestDiffTraceFiles(t *testing.T) {
	recs := manyRecords(600)
	opts := WriterOptions{FrameSize: 64, CheckpointEvery: 4}
	base := buildTrace(t, opts, recs)
	basePath := writeTempTrace(t, base)

	// Identical pair: one root comparison, footer bytes only.
	samePath := writeTempTrace(t, base)
	d, err := DiffTraceFiles(basePath, samePath)
	if err != nil {
		t.Fatalf("diff identical: %v", err)
	}
	if !d.Identical || d.HashComparisons != 1 || d.FullScan {
		t.Fatalf("identical diff: %+v", d)
	}
	if d.BytesReadOld >= int64(len(base)) {
		t.Fatalf("identical diff read %d of %d bytes", d.BytesReadOld, len(base))
	}

	// One changed record, same encoded size: the descent must localize the
	// change to few frames with O(log n) comparisons, not O(n).
	changed := append([]pipeline.Record(nil), recs...)
	for i := range changed {
		if changed[i].Op == pipeline.OpJrnlStore && i > len(changed)/2 {
			changed[i].KI ^= 1
			break
		}
	}
	otherPath := writeTempTrace(t, buildTrace(t, opts, changed))
	d, err = DiffTraceFiles(basePath, otherPath)
	if err != nil {
		t.Fatalf("diff changed: %v", err)
	}
	if d.Identical || d.FullScan {
		t.Fatalf("changed diff took wrong path: %+v", d)
	}
	if d.ChangedFrames == 0 || d.ChangedFrames > 2 {
		t.Fatalf("changed diff localization: %d frames changed (%v)", d.ChangedFrames, d.ChangedRanges)
	}
	if d.ChangedRecords == 0 {
		t.Fatalf("changed diff reports no records")
	}
	if d.HashComparisons >= d.NewFrames {
		t.Fatalf("descent made %d comparisons over %d frames — no subtree skipping", d.HashComparisons, d.NewFrames)
	}

	// The forced full scan agrees on the changed set, at full-read cost.
	full, err := DiffTraceFilesFull(basePath, otherPath)
	if err != nil {
		t.Fatalf("full diff: %v", err)
	}
	if !full.FullScan || fmt.Sprint(full.ChangedRanges) != fmt.Sprint(d.ChangedRanges) {
		t.Fatalf("full diff disagrees: %v vs %v", full.ChangedRanges, d.ChangedRanges)
	}
	if full.BytesReadOld != int64(len(base)) {
		t.Fatalf("full diff read %d, want %d", full.BytesReadOld, len(base))
	}
}

// TestDiffGoldenV1SlowPath pins the v1 fallback: the checked-in v1 trace
// has no Merkle footer, so diffing it — even against itself — must take the
// full-scan path and still conclude identity.
func TestDiffGoldenV1SlowPath(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_v1.bin")
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	a := writeTempTrace(t, data)
	b := writeTempTrace(t, data)
	d, err := DiffTraceFiles(a, b)
	if err != nil {
		t.Fatalf("diff v1: %v", err)
	}
	if !d.FullScan || !d.Identical {
		t.Fatalf("v1 diff: want identical full scan, got %+v", d)
	}
}

// TestReplayParallelFaultClass: a fault mid-shard must surface as a typed,
// Corruption-classified error from every replay strategy, and the failing
// shard's siblings must wind down through the context without deadlock
// (the test would time out otherwise; the race leg runs it under -race).
func TestReplayParallelFaultClass(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4}, manyRecords(600))
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	mid := r.NumFrames() / 2
	evil := append([]byte(nil), data...)
	evil[r.frameOff[mid]+6] ^= 0xFF
	er, err := NewReader(evil)
	if err != nil {
		t.Fatalf("NewReader(evil): %v", err)
	}
	noop := func(*pipeline.Record) {}
	for _, workers := range []int{2, 4, 8} {
		err := er.ReplayParallel(context.Background(), workers, noop)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("workers=%d: want ErrCorrupt, got %v", workers, err)
		}
		if faultinject.ClassOf(err) != faultinject.Corruption {
			t.Fatalf("workers=%d: fault class %v, want Corruption", workers, faultinject.ClassOf(err))
		}
	}
}

// FuzzReplayV2 exercises the v2 surface — checkpoint seeding, range replay,
// parallel replay, range proofs — on mutated traces. Every failure must be
// a typed *CorruptError; a panic or an untyped error fails the fuzz.
func FuzzReplayV2(f *testing.F) {
	recs := manyRecords(200)
	plain := buildTrace(f, WriterOptions{FrameSize: 64, CheckpointEvery: 2}, recs)
	f.Add(plain)
	f.Add(buildTrace(f, WriterOptions{FrameSize: 64, CheckpointEvery: 2, Compress: true}, recs))

	// Seed: a checkpoint frame whose decoded content is cut short (zeros
	// where heap sections should be), CRC valid — the decoder must reject
	// it with a typed error, not panic.
	if r, err := NewReader(plain); err == nil && len(r.ckpts) > 0 {
		ck := r.ckpts[0]
		payload, _, err := readFrame(plain, r.frameOff[ck], false)
		if err != nil {
			f.Fatalf("read checkpoint: %v", err)
		}
		cut := append([]byte(nil), payload...)
		for i := len(cut) / 2; i < len(cut); i++ {
			cut[i] = 0
		}
		truncated := append([]byte(nil), plain...)
		reframeF(f, truncated, r.frameOff[ck], cut)
		f.Add(truncated)

		// Seed: a corrupted Merkle node in the footer, CRC fixed up so the
		// index parses and the damage must be caught by hash comparison.
		idxPayload, _, err := readFrame(plain, r.dataEnd, false)
		if err != nil {
			f.Fatalf("read index: %v", err)
		}
		badIdx := append([]byte(nil), idxPayload...)
		badIdx[len(badIdx)-HashSize-3] ^= 0xFF
		badMerkle := append([]byte(nil), plain...)
		reframeF(f, badMerkle, r.dataEnd, badIdx)
		f.Add(badMerkle)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			mustTyped(t, err)
			return
		}
		noop := func(*pipeline.Record) {}
		ctx := context.Background()
		mustTyped(t, r.Replay(noop))
		n := r.NumFrames()
		if n > 0 {
			mustTyped(t, r.ReplayRange(ctx, n/2, n, noop))
			mustTyped(t, r.ReplayRange(ctx, 0, min(2, n), noop))
		}
		mustTyped(t, r.ReplayParallel(ctx, 3, noop))
		if r.HasMerkle() && n > 0 {
			lo, hi := n/3, n/3+1
			proof, err := r.ProveRange(lo, hi)
			if err != nil {
				mustTyped(t, err)
				return
			}
			root, _ := r.MerkleRoot()
			leaves := r.Leaves()
			mustTyped(t, VerifyRangeProof(root, lo, hi, leaves[lo:hi], proof))
		}
	})
}

// reframeF is reframe for fuzz seeds.
func reframeF(f *testing.F, data []byte, off int64, p []byte) {
	f.Helper()
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || int(plen) != len(p) {
		f.Fatalf("reframe at %d: payload %d bytes, frame holds %d", off, len(p), plen)
	}
	pos := off + int64(n)
	binary.LittleEndian.PutUint32(data[pos:], crc32.ChecksumIEEE(p))
	copy(data[pos+4:], p)
}

// mustTyped accepts nil and typed corruption errors; anything else fails.
func mustTyped(t *testing.T, err error) {
	t.Helper()
	if err == nil || errors.Is(err, ErrCorrupt) {
		return
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		return
	}
	t.Fatalf("untyped error: %v", err)
}

// FuzzCheckpointDecode hammers the checkpoint decoder directly: any input
// must produce a heap or a typed error, never a panic.
func FuzzCheckpointDecode(f *testing.F) {
	heap := shadowHeap{}
	recs := manyRecords(60)
	for i := range recs {
		_ = heap.applyRecord(&recs[i])
	}
	valid := encodeCheckpoint(heap)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || data[0] != tagCheckpoint {
			data = append([]byte{tagCheckpoint}, data...)
		}
		if _, err := decodeCheckpoint(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped error: %v", err)
		}
	})
}
