package trace

import (
	"sort"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// The writer mirrors the reader's shadow heap so it can serialize the full
// heap state at frame boundaries into checkpoint frames. applyRecord makes
// exactly the mutations (and stand-in materializations) the reader's
// bindBody makes — it IS bindBody, run on a copy so the live record's
// E1/E2 (real pipeline entities) are not clobbered with shadows — so a heap
// restored from a checkpoint is structurally identical to the heap a
// sequential replay holds at that boundary.
func (h shadowHeap) applyRecord(r *pipeline.Record) error {
	c := *r
	return bindBody(h, &c)
}

// encodeCheckpoint serializes the heap into a checkpoint frame payload:
// the tag, then every entity's identity (sorted by id, so the bytes are
// deterministic and Merkle-stable), then every entity's links and touched
// slots. Identities come first so links and ref slots can resolve forward
// references on decode.
func encodeCheckpoint(h shadowHeap) []byte {
	ids := make([]int64, 0, len(h))
	for id := range h {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	b := []byte{tagCheckpoint}
	b = putUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		e := h[id]
		b = putUvarint(b, uint64(id))
		b = putVarint(b, int64(e.classID))
		b = putUvarint(b, uint64(e.capacity))
		b = append(b, byte(e.mode))
		b = putUvarint(b, uint64(len(e.typeName)))
		b = append(b, e.typeName...)
	}
	for _, id := range ids {
		e := h[id]
		b = putUvarint(b, uint64(len(e.links)))
		for _, l := range e.links {
			b = putUvarint(b, uint64(l.fieldID))
			if l.target != nil {
				b = putUvarint(b, l.target.id)
			} else {
				b = putUvarint(b, 0)
			}
		}
		b = putUvarint(b, uint64(len(e.slots)))
		for _, s := range e.slots {
			b = append(b, s.kind)
			switch s.kind {
			case slotInt:
				b = putVarint(b, s.i)
			case slotStr:
				b = putUvarint(b, uint64(len(s.s)))
				b = append(b, s.s...)
			case slotRef:
				b = putUvarint(b, s.ref.id)
			}
		}
	}
	return b
}

// decodeCheckpoint rebuilds a shadow heap from a checkpoint frame payload
// (tag already verified by the caller). Every read is bounds-checked; any
// damage yields a typed *CorruptError, never a panic.
func decodeCheckpoint(b []byte) (shadowHeap, error) {
	pos := 1 // past tagCheckpoint
	n, pos, err := readUint(b, pos, 1<<32, "checkpoint entity count")
	if err != nil {
		return nil, err
	}
	h := shadowHeap{}
	order := make([]*shadowEntity, 0, n)
	for i := 0; i < n; i++ {
		var id uint64
		if id, pos, err = readUvarint(b, pos); err != nil {
			return nil, err
		}
		var classID int64
		if classID, pos, err = readVarint(b, pos); err != nil {
			return nil, err
		}
		var capacity int
		if capacity, pos, err = readUint(b, pos, maxCapacity+1, "checkpoint capacity"); err != nil {
			return nil, err
		}
		var mode byte
		if mode, pos, err = readByte(b, pos); err != nil {
			return nil, err
		}
		if mode > uint8(events.ElemModeVal) {
			return nil, corruptf("checkpoint entity %d: bad element mode %d", id, mode)
		}
		var nameLen int
		if nameLen, pos, err = readUint(b, pos, maxFramePayload, "checkpoint name length"); err != nil {
			return nil, err
		}
		if pos+nameLen > len(b) {
			return nil, corruptf("truncated checkpoint type name at %d", pos)
		}
		e := &shadowEntity{
			id:       id,
			typeName: string(b[pos : pos+nameLen]),
			classID:  int(classID),
			array:    classID < 0,
			capacity: capacity,
			mode:     events.ElemMode(mode),
		}
		pos += nameLen
		if _, dup := h[int64(id)]; dup {
			return nil, corruptf("checkpoint entity %d defined twice", id)
		}
		h[int64(id)] = e
		order = append(order, e)
	}
	// resolve maps a stored target id to its entity; 0 is nil, and ids the
	// checkpoint does not define are corruption (the writer serialized
	// every live entity).
	resolve := func(id uint64) (*shadowEntity, error) {
		if id == 0 {
			return nil, nil
		}
		e, ok := h[int64(id)]
		if !ok {
			return nil, corruptf("checkpoint references undefined entity %d", id)
		}
		return e, nil
	}
	for _, e := range order {
		var nLinks int
		if nLinks, pos, err = readUint(b, pos, uint64(maxCapacity+1), "checkpoint link count"); err != nil {
			return nil, err
		}
		for j := 0; j < nLinks; j++ {
			var fieldID int
			if fieldID, pos, err = readUint(b, pos, 1<<31, "checkpoint field id"); err != nil {
				return nil, err
			}
			var tid uint64
			if tid, pos, err = readUvarint(b, pos); err != nil {
				return nil, err
			}
			tgt, rerr := resolve(tid)
			if rerr != nil {
				return nil, rerr
			}
			// Append directly: the writer serialized links in first-put
			// order with unique field ids, so setLink's scan is redundant —
			// but keep its semantics for malformed input.
			e.setLink(fieldID, tgt)
		}
		var nSlots int
		if nSlots, pos, err = readUint(b, pos, uint64(e.capacity)+1, "checkpoint slot count"); err != nil {
			return nil, err
		}
		e.slots = make([]shadowSlot, nSlots)
		for j := 0; j < nSlots; j++ {
			var kind byte
			if kind, pos, err = readByte(b, pos); err != nil {
				return nil, err
			}
			switch kind {
			case slotUnset:
			case slotInt:
				if e.slots[j].i, pos, err = readVarint(b, pos); err != nil {
					return nil, err
				}
			case slotStr:
				var sl int
				if sl, pos, err = readUint(b, pos, maxFramePayload, "checkpoint string length"); err != nil {
					return nil, err
				}
				if pos+sl > len(b) {
					return nil, corruptf("truncated checkpoint string at %d", pos)
				}
				e.slots[j].s = string(b[pos : pos+sl])
				pos += sl
			case slotRef:
				var tid uint64
				if tid, pos, err = readUvarint(b, pos); err != nil {
					return nil, err
				}
				tgt, rerr := resolve(tid)
				if rerr != nil {
					return nil, rerr
				}
				if tgt == nil {
					return nil, corruptf("checkpoint ref slot with nil target")
				}
				e.slots[j].ref = tgt
			default:
				return nil, corruptf("checkpoint slot kind %d unknown", kind)
			}
			e.slots[j].kind = kind
		}
	}
	if pos != len(b) {
		return nil, corruptf("checkpoint has %d trailing bytes", len(b)-pos)
	}
	return h, nil
}
