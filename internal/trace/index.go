package trace

import (
	"encoding/binary"
	"os"
)

// Index is a trace's metadata, loaded without reading the data frames:
// OpenIndex reads only the fixed-size header, the trailer, and the index
// frame the trailer points at. For a v2 trace that includes every frame's
// Merkle leaf and the tree root, so range proofs and trace diffs work from
// the footer alone.
type Index struct {
	// Version and Compressed mirror Stats.
	Version    uint32
	Compressed bool
	// Frames counts all frames (data and checkpoint).
	Frames int
	// FrameOff and FrameRecords are per-frame file offsets and record
	// counts (checkpoint frames hold zero records).
	FrameOff     []int64
	FrameRecords []uint64
	// Records, FinalClock, Instructions are the stream totals.
	Records      uint64
	FinalClock   uint64
	Instructions uint64
	// Checkpoints are the checkpoint frame indices, ascending (v2 only).
	Checkpoints []int
	// Leaves and Root are the Merkle footer (HasMerkle reports presence —
	// v1 traces have none).
	Leaves    []Hash
	Root      Hash
	HasMerkle bool
	// DataEnd is the file offset where data frames end (the index frame
	// starts there); FileSize is the whole file; BytesRead counts what
	// OpenIndex actually read to build this Index.
	DataEnd   int64
	FileSize  int64
	BytesRead int64
}

// OpenIndex loads a trace's Index by reading only its header, trailer, and
// index frame — O(frames) metadata, never the data frames themselves. A
// truncated trace (no trailer) has no reachable index and fails here; use
// NewReader's recovery path for those.
func OpenIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &IOError{Op: "open", Off: 0, Err: err}
	}
	defer f.Close()
	return readIndex(f)
}

// readIndex reads an Index from an open trace file.
func readIndex(f *os.File) (*Index, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, &IOError{Op: "stat", Off: 0, Err: err}
	}
	size := st.Size()
	if size < headerSize+trailerSize {
		return nil, corruptf("file too short (%d bytes)", size)
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, &IOError{Op: "read", Off: 0, Err: err}
	}
	version, flags, err := checkHeader(hdr)
	if err != nil {
		return nil, err
	}
	trailer := make([]byte, trailerSize)
	if _, err := f.ReadAt(trailer, size-trailerSize); err != nil {
		return nil, &IOError{Op: "read", Off: size - trailerSize, Err: err}
	}
	if string(trailer[8:]) != TrailerMagic {
		return nil, corruptf("bad trailer magic")
	}
	indexOff := binary.LittleEndian.Uint64(trailer[:8])
	if indexOff < headerSize || indexOff > uint64(size-trailerSize) {
		return nil, corruptf("index offset %d out of range", indexOff)
	}
	region := make([]byte, size-trailerSize-int64(indexOff))
	if _, err := f.ReadAt(region, int64(indexOff)); err != nil {
		return nil, &IOError{Op: "read", Off: int64(indexOff), Err: err}
	}
	payload, _, err := readFrame(region, 0, false)
	if err != nil {
		return nil, frameErr(int64(indexOff), err)
	}
	d, err := parseIndexData(payload, version, int64(indexOff))
	if err != nil {
		return nil, err
	}
	return &Index{
		Version:      version,
		Compressed:   flags&FlagCompress != 0,
		Frames:       len(d.frameOff),
		FrameOff:     d.frameOff,
		FrameRecords: d.frameRec,
		Records:      d.records,
		FinalClock:   d.finalClock,
		Instructions: d.instructions,
		Checkpoints:  d.ckpts,
		Leaves:       d.leaves,
		Root:         d.root,
		HasMerkle:    d.hasMerkle,
		DataEnd:      int64(indexOff),
		FileSize:     size,
		BytesRead:    int64(headerSize + trailerSize + len(region)),
	}, nil
}

// HasMerkle reports whether the trace carries a Merkle footer (format v2).
func (r *Reader) HasMerkle() bool { return r.hasMerkle }

// MerkleRoot returns the trace's Merkle root from the footer; ok is false
// for v1 and recovered traces, which have none.
func (r *Reader) MerkleRoot() (root Hash, ok bool) { return r.root, r.hasMerkle }

// Leaves returns a copy of the per-frame Merkle leaf hashes (nil without a
// Merkle footer).
func (r *Reader) Leaves() []Hash {
	return append([]Hash(nil), r.leaves...)
}

// ProveRange builds a Merkle range proof for frames [lo, hi): together with
// those frames' leaf hashes it convinces VerifyRangeProof that they belong
// to this trace's root, without any other frame's bytes.
func (r *Reader) ProveRange(lo, hi int) (*RangeProof, error) {
	if !r.hasMerkle {
		return nil, corruptf("trace has no merkle footer (format v%d)", r.stats.Version)
	}
	if lo < 0 || hi > len(r.leaves) || lo >= hi {
		return nil, corruptf("merkle range [%d,%d) out of bounds (0..%d)", lo, hi, len(r.leaves))
	}
	return proveRange(buildLevels(r.leaves), lo, hi), nil
}

// RangeCheck reports a successful VerifyFileRange: which frames were
// proven, how many records they hold, and how many file bytes the check
// actually read (footer + the range itself — never the whole file).
type RangeCheck struct {
	Lo, Hi    int
	Frames    int
	Records   uint64
	BytesRead int64
	FileSize  int64
	Root      Hash
}

// VerifyFileRange proves that frames [lo, hi) of the trace at path are
// intact and belong to the trace's Merkle root, reading only the footer and
// the frame range itself. Any damage — a flipped payload byte, a torn
// frame, a tampered footer leaf or checkpoint — fails with a typed
// *CorruptError. The check hashes the stored (post-compression) frame
// bytes, so it never inflates payloads.
func VerifyFileRange(path string, lo, hi int) (*RangeCheck, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &IOError{Op: "open", Off: 0, Err: err}
	}
	defer f.Close()
	ix, err := readIndex(f)
	if err != nil {
		return nil, err
	}
	if !ix.HasMerkle {
		return nil, corruptf("trace has no merkle footer (format v%d); range verification needs v%d", ix.Version, Version)
	}
	if lo < 0 || hi > ix.Frames || lo >= hi {
		return nil, corruptf("merkle range [%d,%d) out of bounds (0..%d)", lo, hi, ix.Frames)
	}
	base := ix.FrameOff[lo]
	end := ix.DataEnd
	if hi < ix.Frames {
		end = ix.FrameOff[hi]
	}
	if end <= base {
		return nil, corruptf("frame offsets not ascending at %d", lo)
	}
	region := make([]byte, end-base)
	if _, err := f.ReadAt(region, base); err != nil {
		return nil, &IOError{Op: "read", Off: base, Err: err}
	}
	leaves := make([]Hash, 0, hi-lo)
	var records uint64
	for i := lo; i < hi; i++ {
		off := ix.FrameOff[i] - base
		payload, next, err := readFrame(region, off, false)
		if err != nil {
			return nil, frameErr(ix.FrameOff[i], err)
		}
		wantNext := end - base
		if i+1 < hi {
			wantNext = ix.FrameOff[i+1] - base
		}
		if next != wantNext {
			return nil, corruptAt(ix.FrameOff[i], "frame %d ends at %d, index says %d", i, base+next, base+wantNext)
		}
		leaves = append(leaves, leafHash(payload))
		records += ix.FrameRecords[i]
	}
	proof := proveRange(buildLevels(ix.Leaves), lo, hi)
	if err := VerifyRangeProof(ix.Root, lo, hi, leaves, proof); err != nil {
		return nil, err
	}
	return &RangeCheck{
		Lo: lo, Hi: hi,
		Frames:    hi - lo,
		Records:   records,
		BytesRead: ix.BytesRead + int64(len(region)),
		FileSize:  ix.FileSize,
		Root:      ix.Root,
	}, nil
}
