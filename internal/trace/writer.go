package trace

import (
	"bytes"
	"compress/flate"
	"hash/crc32"
	"io"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// WriterOptions configures trace capture.
type WriterOptions struct {
	// Compress DEFLATE-compresses data-frame payloads (FlagCompress).
	Compress bool
	// FrameSize is the payload byte count at which a frame is cut
	// (0 = 64 KiB).
	FrameSize int
	// MaxBytes stops capture once the file reaches this size (0 =
	// unlimited; checked at frame boundaries, so the file can overshoot
	// by up to one frame). Later records are counted but not written;
	// Close still writes the index and trailer, so the truncated trace
	// is a complete, replayable file covering the run's prefix.
	MaxBytes int64
	// CheckpointEvery is the number of data frames between heap-checkpoint
	// frames (0 = the default, DefaultCheckpointEvery; negative disables
	// checkpoints, which forfeits sharded replay but keeps the Merkle
	// footer). Checkpoints are what let ReplayRange and ReplayParallel
	// seed a shard's shadow heap without decoding the whole prefix.
	CheckpointEvery int
}

// DefaultCheckpointEvery is the default checkpoint cadence: one heap
// checkpoint per this many data frames (~1 MiB of raw payload at the
// default frame size).
const DefaultCheckpointEvery = 16

// Writer streams pipeline records to a trace file. It implements both
// events.Listener (as a no-op, so it can be added to a Transport) and
// pipeline.RecordTap, which is how it actually receives the stream: every
// record verbatim, including heap-journal records.
//
// Writer methods are called from a consumer goroutine; errors are latched
// and reported by Close, since the record callback cannot fail.
type Writer struct {
	events.NopListener
	w    io.Writer
	opts WriterOptions
	err  error

	off    int64  // bytes written to w so far
	buf    []byte // current frame payload under construction
	strs   map[string]int
	prevClock uint64

	frames       []frameInfo
	frameRecords uint64
	totalRecords uint64
	finalClock   uint64
	instructions uint64
	closed       bool
	truncated    bool
	dropped      uint64

	// Format v2 state: the writer-side mirror of the replay shadow heap
	// (serialized into checkpoint frames), the checkpoint cadence counter,
	// the checkpointed frame indices, and one Merkle leaf per frame.
	mirror    shadowHeap
	sinceCkpt int
	ckpts     []int
	leaves    []Hash
	root      Hash
}

type frameInfo struct {
	off     int64
	records uint64
}

// NewWriter writes the file header and returns a Writer ready to receive
// records. The caller owns w and closes it after Close.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	if opts.FrameSize <= 0 {
		opts.FrameSize = 64 << 10
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	tw := &Writer{w: w, opts: opts, strs: map[string]int{}, mirror: shadowHeap{}}
	var flags uint32
	if opts.Compress {
		flags |= FlagCompress
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, Magic...)
	hdr = le32(hdr, Version)
	hdr = le32(hdr, flags)
	tw.write(hdr)
	return tw
}

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	b = le32(b, uint32(v))
	return le32(b, uint32(v>>32))
}

func (tw *Writer) write(p []byte) {
	if tw.err != nil {
		return
	}
	n, err := tw.w.Write(p)
	tw.off += int64(n)
	if err != nil {
		tw.err = &IOError{Op: "write", Off: tw.off, Err: err}
	}
}

// Record implements pipeline.RecordTap: it appends one record to the
// current frame, cutting a new frame when the payload is full.
func (tw *Writer) Record(r *pipeline.Record) {
	if tw.err != nil || tw.closed {
		return
	}
	if tw.truncated {
		tw.dropped++
		return
	}
	tw.encode(r)
	// Mirror the reader's shadow-heap mutation for this record, so a
	// checkpoint at the next frame boundary captures exactly the heap a
	// sequential replay holds there. A record the mirror rejects (e.g. a
	// store past the journaled capacity) is one the reader will reject at
	// replay too, so the stream past it is unreachable either way — the
	// writer records it verbatim and leaves the verdict to the reader.
	_ = tw.mirror.applyRecord(r)
	tw.frameRecords++
	tw.totalRecords++
	tw.finalClock = r.Clock
	if len(tw.buf) >= tw.opts.FrameSize {
		tw.flushFrame()
		if m := tw.opts.MaxBytes; m > 0 && tw.off >= m {
			tw.truncated = true
			return
		}
		if k := tw.opts.CheckpointEvery; k > 0 {
			tw.sinceCkpt++
			if tw.sinceCkpt >= k {
				tw.writeCheckpoint()
				tw.sinceCkpt = 0
			}
		}
	}
}

// sid interns s in the current frame's string table, emitting a definition
// on first use, and returns its frame-local id.
func (tw *Writer) sid(s string) int {
	if id, ok := tw.strs[s]; ok {
		return id
	}
	id := len(tw.strs)
	tw.strs[s] = id
	tw.buf = append(tw.buf, tagStrDef)
	tw.buf = putUvarint(tw.buf, uint64(len(s)))
	tw.buf = append(tw.buf, s...)
	return id
}

func (tw *Writer) encode(r *pipeline.Record) {
	// Intern strings first: a definition must precede the event that
	// references it in the stream.
	sid := -1
	switch {
	case r.Op == pipeline.OpJrnlAlloc:
		sid = tw.sid(r.KS)
	case r.Op == pipeline.OpJrnlStore && r.Kx == pipeline.KeyStr:
		sid = tw.sid(r.KS)
	}
	b := append(tw.buf, byte(r.Op))
	b = putUvarint(b, r.Clock-tw.prevClock)
	tw.prevClock = r.Clock
	switch r.Op {
	case pipeline.OpLoopEntry, pipeline.OpLoopBack, pipeline.OpLoopExit,
		pipeline.OpMethodEntry, pipeline.OpMethodExit:
		b = putUvarint(b, uint64(r.ID))
	case pipeline.OpFieldGet:
		b = putUvarint(b, uint64(r.ID))
		b = putUvarint(b, uint64(r.Ent))
	case pipeline.OpFieldPut:
		b = putUvarint(b, uint64(r.ID))
		b = putUvarint(b, uint64(r.Ent))
		b = putUvarint(b, uint64(r.Aux))
	case pipeline.OpArrayLoad:
		b = putUvarint(b, uint64(r.Ent))
	case pipeline.OpArrayStore:
		b = putUvarint(b, uint64(r.Ent))
		b = putUvarint(b, uint64(r.Aux))
	case pipeline.OpAlloc, pipeline.OpInstr:
		b = putUvarint(b, uint64(r.ID))
		b = putUvarint(b, uint64(r.Ent))
	case pipeline.OpInputRead, pipeline.OpOutputWrite:
		// Tag and clock only.
	case pipeline.OpJrnlAlloc:
		b = putUvarint(b, uint64(r.Ent))
		b = putVarint(b, int64(r.ID))
		b = putUvarint(b, uint64(r.Aux))
		b = append(b, r.Kx)
		b = putUvarint(b, uint64(sid))
	case pipeline.OpJrnlStore:
		b = putUvarint(b, uint64(r.Ent))
		b = putUvarint(b, uint64(r.ID))
		b = append(b, r.Kx)
		switch r.Kx {
		case pipeline.KeyInt:
			b = putVarint(b, r.KI)
		case pipeline.KeyStr:
			b = putUvarint(b, uint64(sid))
		default:
			b = putUvarint(b, uint64(r.Aux))
		}
	}
	tw.buf = b
}

// flushFrame writes the current payload as one frame and resets the
// frame-local state (string table, clock base).
func (tw *Writer) flushFrame() {
	if tw.frameRecords == 0 {
		return
	}
	tw.emitFrame(tw.buf, tw.frameRecords)
	tw.buf = tw.buf[:0]
	tw.strs = map[string]int{}
	tw.prevClock = 0
	tw.frameRecords = 0
}

// writeCheckpoint serializes the mirror heap as a checkpoint frame (zero
// records) and remembers its frame index so the reader can seed range
// replays from it.
func (tw *Writer) writeCheckpoint() {
	if tw.err != nil {
		return
	}
	tw.ckpts = append(tw.ckpts, len(tw.frames))
	tw.emitFrame(encodeCheckpoint(tw.mirror), 0)
}

// emitFrame compresses (if configured), hashes, and writes one frame.
func (tw *Writer) emitFrame(payload []byte, records uint64) {
	if tw.opts.Compress {
		var z bytes.Buffer
		fw, _ := flate.NewWriter(&z, flate.DefaultCompression)
		fw.Write(payload)
		if err := fw.Close(); err != nil && tw.err == nil {
			tw.err = err
			return
		}
		payload = z.Bytes()
	}
	tw.frames = append(tw.frames, frameInfo{off: tw.off, records: records})
	tw.leaves = append(tw.leaves, leafHash(payload))
	env := putUvarint(nil, uint64(len(payload)))
	env = le32(env, crc32.ChecksumIEEE(payload))
	tw.write(env)
	tw.write(payload)
}

// SetInstructions records the frontend's final executed-instruction count
// in the trace index, so offline replay can report it without a VM.
func (tw *Writer) SetInstructions(n uint64) { tw.instructions = n }

// MerkleRoot returns the trace's Merkle root. Valid only after Close (an
// aborted trace has no footer, so its root is never computed).
func (tw *Writer) MerkleRoot() Hash { return tw.root }

// Truncated reports whether the size limit stopped capture early.
func (tw *Writer) Truncated() bool { return tw.truncated }

// DroppedRecords returns how many records arrived after capture stopped.
func (tw *Writer) DroppedRecords() uint64 { return tw.dropped }

// Abort flushes the current frame and latches the writer closed WITHOUT
// writing the index or trailer. The result is a recognizable partial
// trace — a valid header followed by whole CRC-framed records, exactly
// the shape a crash mid-recording leaves behind — which readers accept
// through the truncated-trace recovery path. Use it when a cancelled run
// should keep its partial trace cheaply instead of finishing a file that
// claims completeness.
func (tw *Writer) Abort() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	tw.flushFrame()
	return tw.err
}

// Close flushes the last frame, writes the index frame and trailer, and
// returns the first write error, if any. The underlying writer is not
// closed.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	tw.flushFrame()
	idx := putUvarint(nil, uint64(len(tw.frames)))
	for _, f := range tw.frames {
		idx = putUvarint(idx, uint64(f.off))
		idx = putUvarint(idx, f.records)
	}
	idx = putUvarint(idx, tw.totalRecords)
	idx = putUvarint(idx, tw.finalClock)
	idx = putUvarint(idx, tw.instructions)
	// Format v2 index tail: checkpoint frame indices, one Merkle leaf per
	// frame, and the tree root.
	idx = putUvarint(idx, uint64(len(tw.ckpts)))
	for _, c := range tw.ckpts {
		idx = putUvarint(idx, uint64(c))
	}
	for _, l := range tw.leaves {
		idx = append(idx, l[:]...)
	}
	tw.root = merkleRoot(tw.leaves)
	idx = append(idx, tw.root[:]...)
	indexOff := tw.off
	env := putUvarint(nil, uint64(len(idx)))
	env = le32(env, crc32.ChecksumIEEE(idx))
	tw.write(env)
	tw.write(idx)
	trailer := le64(nil, uint64(indexOff))
	trailer = append(trailer, TrailerMagic...)
	tw.write(trailer)
	return tw.err
}

var _ pipeline.RecordTap = (*Writer)(nil)
var _ events.Listener = (*Writer)(nil)
