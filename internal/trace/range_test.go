package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
)

// manyRecords builds a stream long enough to span many frames and
// checkpoints: repeated journaled allocations, stores, field traffic, and
// loop events, with entity ids reused across the stream so later frames
// depend on heap state built in earlier ones.
func manyRecords(n int) []pipeline.Record {
	var recs []pipeline.Record
	clock := uint64(0)
	tick := func() uint64 { clock++; return clock }
	for id := int64(1); id <= 7; id++ {
		recs = append(recs, pipeline.Record{Op: pipeline.OpJrnlAlloc, Clock: tick(),
			ID: -1, Ent: id, Aux: 8, Kx: uint8(events.ElemModeAuto), KS: fmt.Sprintf("T%d[]", id%3)})
	}
	for i := 0; i < n; i++ {
		id := int64(1 + i%7)
		switch i % 5 {
		case 0:
			recs = append(recs, pipeline.Record{Op: pipeline.OpJrnlAlloc, Clock: tick(),
				ID: -1, Ent: id, Aux: 8, Kx: uint8(events.ElemModeAuto), KS: fmt.Sprintf("T%d[]", i%3)})
		case 1:
			recs = append(recs, pipeline.Record{Op: pipeline.OpJrnlStore, Clock: tick(),
				Ent: id, ID: int32(i % 8), Kx: pipeline.KeyInt, KI: int64(i)})
		case 2:
			recs = append(recs, pipeline.Record{Op: pipeline.OpFieldPut, Clock: tick(),
				ID: int32(i % 4), Ent: id, Aux: 1 + (id % 7)})
		case 3:
			recs = append(recs, pipeline.Record{Op: pipeline.OpLoopEntry, Clock: tick(), ID: int32(i % 9)})
		case 4:
			recs = append(recs, pipeline.Record{Op: pipeline.OpArrayLoad, Clock: tick(), Ent: id})
		}
	}
	return recs
}

// flatten captures a replay as comparable values: entity interface pointers
// are replaced by their ids, since pointer identity is per-replay.
type flatRec struct {
	pipeline.Record
	id1, id2 uint64
}

func flatten(dispatch func(func(*pipeline.Record)) error, t *testing.T) []flatRec {
	t.Helper()
	var out []flatRec
	if err := dispatch(func(r *pipeline.Record) {
		f := flatRec{Record: *r}
		if r.E1 != nil {
			f.id1 = r.E1.EntityID()
		}
		if r.E2 != nil {
			f.id2 = r.E2.EntityID()
		}
		f.E1, f.E2 = nil, nil
		out = append(out, f)
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func buildRangeTrace(t *testing.T, opts WriterOptions) (*Reader, []flatRec) {
	t.Helper()
	data := buildTrace(t, opts, manyRecords(600))
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	seq := flatten(func(d func(*pipeline.Record)) error { return r.Replay(d) }, t)
	return r, seq
}

func TestReplayRangeMatchesSequential(t *testing.T) {
	for _, opts := range []WriterOptions{
		{FrameSize: 64, CheckpointEvery: 4},
		{FrameSize: 64, CheckpointEvery: 4, Compress: true},
		{FrameSize: 64, CheckpointEvery: -1}, // no checkpoints: catch-up from 0
	} {
		r, seq := buildRangeTrace(t, opts)
		n := r.NumFrames()
		if n < 10 {
			t.Fatalf("trace has only %d frames; test wants many", n)
		}
		if opts.CheckpointEvery > 0 && len(r.Checkpoints()) == 0 {
			t.Fatal("no checkpoint frames written")
		}
		// Per-frame replays must concatenate to the sequential stream.
		var cat []flatRec
		for f := 0; f < n; f++ {
			cat = append(cat, flatten(func(d func(*pipeline.Record)) error {
				return r.ReplayRange(context.Background(), f, f+1, d)
			}, t)...)
		}
		compareFlat(t, "per-frame concatenation", cat, seq)
		// A few multi-frame windows, including checkpoint-crossing ones.
		for _, w := range [][2]int{{0, n}, {1, n - 1}, {n / 3, 2 * n / 3}, {n - 2, n}, {5, 5}} {
			got := flatten(func(d func(*pipeline.Record)) error {
				return r.ReplayRange(context.Background(), w[0], w[1], d)
			}, t)
			want := windowOf(seq, r, w[0], w[1], t)
			compareFlat(t, fmt.Sprintf("window [%d,%d)", w[0], w[1]), got, want)
		}
	}
}

// windowOf slices the sequential stream to the records of frames [lo, hi)
// by replaying each frame individually and counting.
func windowOf(seq []flatRec, r *Reader, lo, hi int, t *testing.T) []flatRec {
	t.Helper()
	start := 0
	for f := 0; f < lo; f++ {
		start += frameCount(r, f, t)
	}
	count := 0
	for f := lo; f < hi; f++ {
		count += frameCount(r, f, t)
	}
	return seq[start : start+count]
}

func frameCount(r *Reader, f int, t *testing.T) int {
	t.Helper()
	n := 0
	if err := r.ReplayRange(context.Background(), f, f+1, func(*pipeline.Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	return n
}

func compareFlat(t *testing.T, what string, got, want []flatRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

func TestReplayRangeBounds(t *testing.T) {
	r, _ := buildRangeTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4})
	n := r.NumFrames()
	for _, w := range [][2]int{{-1, 1}, {0, n + 1}, {3, 2}} {
		err := r.ReplayRange(context.Background(), w[0], w[1], func(*pipeline.Record) {})
		if err == nil {
			t.Errorf("range [%d,%d): no error", w[0], w[1])
		}
	}
}

func TestReplayParallelMatchesSequential(t *testing.T) {
	for _, opts := range []WriterOptions{
		{FrameSize: 64, CheckpointEvery: 4},
		{FrameSize: 64, CheckpointEvery: 4, Compress: true},
		{FrameSize: 64, CheckpointEvery: -1},
	} {
		r, seq := buildRangeTrace(t, opts)
		for _, workers := range []int{1, 2, 4, 0} {
			got := flatten(func(d func(*pipeline.Record)) error {
				return r.ReplayParallel(context.Background(), workers, d)
			}, t)
			compareFlat(t, fmt.Sprintf("parallel -j %d (compress=%v)", workers, opts.Compress), got, seq)
		}
	}
}

// TestReplayParallelCorrupt: damage one mid-trace frame; parallel replay
// must surface a typed corruption error (not a context cancellation) and
// dispatch only the prefix the sequential replay would have dispatched.
func TestReplayParallelCorrupt(t *testing.T) {
	data := buildTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4}, manyRecords(600))
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumFrames()
	victim := r.frameOff[2*n/3]
	// Flip a payload byte but fix up nothing: the CRC catches it.
	bad := append([]byte(nil), data...)
	bad[victim+6] ^= 0xFF
	rb, err := NewReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats().Truncated {
		// The strict open failed and recovery kicked in; that path replays
		// sequentially anyway. Force the strict reader shape for the test.
		t.Skip("corruption demoted reader to recovery path")
	}
	var seqN, parN int
	seqErr := rb.Replay(func(*pipeline.Record) { seqN++ })
	parErr := rb.ReplayParallel(context.Background(), 4, func(*pipeline.Record) { parN++ })
	if !errors.Is(parErr, ErrCorrupt) {
		t.Fatalf("parallel error = %v, want ErrCorrupt", parErr)
	}
	if !errors.Is(seqErr, ErrCorrupt) {
		t.Fatalf("sequential error = %v, want ErrCorrupt", seqErr)
	}
	if seqN != parN {
		t.Errorf("dispatched prefix: parallel %d, sequential %d", parN, seqN)
	}
}

// TestReplayParallelCancel: a caller-cancelled context stops a parallel
// replay without deadlock and reports the cancellation.
func TestReplayParallelCancel(t *testing.T) {
	r, _ := buildRangeTrace(t, WriterOptions{FrameSize: 64, CheckpointEvery: 4})
	ctx, cancel := context.WithCancel(context.Background())
	stop := 50
	n := 0
	err := r.ReplayParallel(ctx, 4, func(*pipeline.Record) {
		n++
		if n == stop {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGoldenV1 pins backward compatibility: a trace written by the v1
// writer (checked in before the v2 format change) must still open, report
// version 1, and replay its full record stream — sequentially, via
// ReplayRange's slow path, and via ReplayParallel's fallback.
func TestGoldenV1(t *testing.T) {
	r, err := Open("testdata/golden_v1.bin")
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Version != VersionV1 {
		t.Fatalf("version = %d, want %d", st.Version, VersionV1)
	}
	if st.Truncated {
		t.Fatal("golden v1 trace needed recovery")
	}
	want := sampleRecords()
	if st.Records != uint64(len(want)) {
		t.Fatalf("index records = %d, want %d", st.Records, len(want))
	}
	if len(r.Checkpoints()) != 0 {
		t.Error("v1 trace reports checkpoints")
	}
	check := func(name string, replay func(d func(*pipeline.Record)) error) {
		got := flatten(replay, t)
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
		}
		for i := range got {
			w := want[i]
			if got[i].Op != w.Op || got[i].Clock != w.Clock || got[i].KS != w.KS ||
				got[i].KI != w.KI || got[i].Ent != w.Ent {
				t.Errorf("%s: record %d = %+v, want %+v", name, i, got[i].Record, w)
			}
		}
	}
	check("sequential", func(d func(*pipeline.Record)) error { return r.Replay(d) })
	check("range", func(d func(*pipeline.Record)) error {
		return r.ReplayRange(context.Background(), 0, r.NumFrames(), d)
	})
	check("parallel", func(d func(*pipeline.Record)) error {
		return r.ReplayParallel(context.Background(), 4, d)
	})
}

// TestV2RoundTripStats: the v2 writer's output opens strictly, reports the
// current version, checkpoints at the configured cadence, and carries a
// Merkle footer whose root matches the writer's.
func TestV2RoundTripStats(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, WriterOptions{FrameSize: 64, CheckpointEvery: 4})
	recs := manyRecords(600)
	for i := range recs {
		tw.Record(&recs[i])
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Version != Version {
		t.Fatalf("version = %d, want %d", st.Version, Version)
	}
	if st.Records != uint64(len(recs)) {
		t.Fatalf("records = %d, want %d", st.Records, len(recs))
	}
	cks := r.Checkpoints()
	if len(cks) == 0 {
		t.Fatal("no checkpoints")
	}
	for i, c := range cks {
		if c <= 0 || c >= r.NumFrames() || (i > 0 && c <= cks[i-1]) {
			t.Fatalf("bad checkpoint frame index %d at %d", c, i)
		}
	}
	if !r.hasMerkle {
		t.Fatal("no merkle footer")
	}
	if r.root != tw.MerkleRoot() {
		t.Fatalf("reader root %s != writer root %s", r.root, tw.MerkleRoot())
	}
	if got := merkleRoot(r.leaves); got != r.root {
		t.Fatalf("footer leaves hash to %s, root says %s", got, r.root)
	}
}
