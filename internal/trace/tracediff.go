package trace

import "os"

// TraceDiff reports how two trace files differ at the frame level, and what
// it cost to find out. With Merkle footers on both sides the differ reads
// only the two footers and descends the trees, skipping identical subtrees —
// O(changed frames + log n) hash comparisons, zero data-frame bytes read.
// Without them (v1 traces, or mismatched frame counts) it falls back to a
// full byte scan.
type TraceDiff struct {
	// OldFrames and NewFrames are the two traces' frame counts.
	OldFrames, NewFrames int
	// Identical is true when every frame matches (same count, same bytes).
	Identical bool
	// ChangedRanges are the differing frame ranges [lo, hi), ascending and
	// coalesced, in the common frame numbering; frames past the shorter
	// trace's end are appended as a final range when counts differ.
	ChangedRanges [][2]int
	// ChangedFrames counts frames inside ChangedRanges.
	ChangedFrames int
	// ChangedRecords counts the records those frames hold on the new side
	// (from the footer's per-frame record counts — no frame reads needed).
	ChangedRecords uint64
	// HashComparisons counts Merkle node comparisons the descent made
	// (FullScan diffs count frame-byte comparisons here instead).
	HashComparisons int
	// FullScan marks the fallback byte-compare path (v1 trace on either
	// side, or frame counts differ so the trees are incomparable).
	FullScan bool
	// BytesReadOld and BytesReadNew count file bytes actually read per side.
	BytesReadOld, BytesReadNew int64
}

// DiffTraceFiles compares the traces at oldPath and newPath frame by frame.
// When both carry Merkle footers and agree on frame count, identical
// subtrees are skipped wholesale: the diff reads the two footers and
// nothing else, and the descent visits only the root-to-changed-leaf
// spines. Truncated traces have no reachable footer and fail with the
// reader's typed errors.
func DiffTraceFiles(oldPath, newPath string) (*TraceDiff, error) {
	oldIx, err := OpenIndex(oldPath)
	if err != nil {
		return nil, err
	}
	newIx, err := OpenIndex(newPath)
	if err != nil {
		return nil, err
	}
	d := &TraceDiff{
		OldFrames:    oldIx.Frames,
		NewFrames:    newIx.Frames,
		BytesReadOld: oldIx.BytesRead,
		BytesReadNew: newIx.BytesRead,
	}
	if oldIx.HasMerkle && newIx.HasMerkle && oldIx.Frames == newIx.Frames {
		d.diffMerkle(oldIx, newIx)
		return d, nil
	}
	if err := d.diffFullScan(oldPath, newPath, oldIx, newIx); err != nil {
		return nil, err
	}
	return d, nil
}

// DiffTraceFilesFull forces the full byte-scan path — what every diff would
// cost without the Merkle footer — so benchmarks can price what the footer
// saves. Results are equivalent to DiffTraceFiles up to the cost fields.
func DiffTraceFilesFull(oldPath, newPath string) (*TraceDiff, error) {
	oldIx, err := OpenIndex(oldPath)
	if err != nil {
		return nil, err
	}
	newIx, err := OpenIndex(newPath)
	if err != nil {
		return nil, err
	}
	d := &TraceDiff{OldFrames: oldIx.Frames, NewFrames: newIx.Frames}
	if err := d.diffFullScan(oldPath, newPath, oldIx, newIx); err != nil {
		return nil, err
	}
	return d, nil
}

// diffMerkle descends the two Merkle trees from the roots, pruning every
// subtree whose hashes agree. Equal leaf counts give the trees identical
// shape, so node (level, idx) on both sides covers the same frame range.
func (d *TraceDiff) diffMerkle(oldIx, newIx *Index) {
	if oldIx.Root == newIx.Root {
		d.HashComparisons = 1
		d.Identical = true
		return
	}
	a := buildLevels(oldIx.Leaves)
	b := buildLevels(newIx.Leaves)
	var walk func(level, idx int)
	walk = func(level, idx int) {
		d.HashComparisons++
		if a[level][idx] == b[level][idx] {
			return
		}
		if level == 0 {
			d.appendChanged(idx, idx+1)
			return
		}
		lo := idx * 2
		walk(level-1, lo)
		if lo+1 < len(a[level-1]) {
			walk(level-1, lo+1)
		}
	}
	walk(len(a)-1, 0)
	d.finish(newIx)
}

// diffFullScan is the slow path: read both files and compare every common
// frame's stored bytes (envelope included — equal stored bytes is exactly
// the Merkle leaves' notion of equality). Runs for v1 traces, which have
// frame offsets in their index but no hashes, and for mismatched frame
// counts, where the trees' shapes diverge.
func (d *TraceDiff) diffFullScan(oldPath, newPath string, oldIx, newIx *Index) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return &IOError{Op: "read", Off: 0, Err: err}
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return &IOError{Op: "read", Off: 0, Err: err}
	}
	d.FullScan = true
	d.BytesReadOld = int64(len(oldData))
	d.BytesReadNew = int64(len(newData))
	frameBytes := func(ix *Index, data []byte, i int) ([]byte, error) {
		lo := ix.FrameOff[i]
		hi := ix.DataEnd
		if i+1 < ix.Frames {
			hi = ix.FrameOff[i+1]
		}
		if lo < headerSize || hi > int64(len(data)) || lo >= hi {
			return nil, corruptAt(lo, "frame %d offsets out of range", i)
		}
		return data[lo:hi], nil
	}
	common := min(oldIx.Frames, newIx.Frames)
	for i := 0; i < common; i++ {
		ob, err := frameBytes(oldIx, oldData, i)
		if err != nil {
			return err
		}
		nb, err := frameBytes(newIx, newData, i)
		if err != nil {
			return err
		}
		d.HashComparisons++
		if string(ob) != string(nb) {
			d.appendChanged(i, i+1)
		}
	}
	if oldIx.Frames != newIx.Frames {
		d.appendChanged(common, max(oldIx.Frames, newIx.Frames))
	}
	d.Identical = len(d.ChangedRanges) == 0
	d.finish(newIx)
	return nil
}

// appendChanged records frames [lo, hi) as changed, coalescing with the
// previous range when adjacent (the descent and the scan both emit
// ascending indices).
func (d *TraceDiff) appendChanged(lo, hi int) {
	if n := len(d.ChangedRanges); n > 0 && d.ChangedRanges[n-1][1] == lo {
		d.ChangedRanges[n-1][1] = hi
		return
	}
	d.ChangedRanges = append(d.ChangedRanges, [2]int{lo, hi})
}

// finish derives the summary counters from ChangedRanges.
func (d *TraceDiff) finish(newIx *Index) {
	d.Identical = len(d.ChangedRanges) == 0
	for _, rg := range d.ChangedRanges {
		d.ChangedFrames += rg[1] - rg[0]
		for f := rg[0]; f < rg[1] && f < len(newIx.FrameRecords); f++ {
			d.ChangedRecords += newIx.FrameRecords[f]
		}
	}
}
