package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// TestThreadedRecordReplayRoundTrip is the threaded byte-identity gate:
// a run that spawns VM threads records one trace per thread alongside the
// main trace, the manifest lists every thread, and both sequential and
// parallel replay rebuild a profile byte-identical to the live one —
// per-thread trees, "t<tid>:" attribution, summed instruction count and
// all.
func TestThreadedRecordReplayRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.Threaded(2, 20)
	rec, err := s.Record("threaded", src, "threaded-lists", algoprof.Config{Seed: 7}, trace.WriterOptions{Compress: true})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if rec.Profile.Threads != 2 {
		t.Fatalf("live profile accounts %d threads, want 2", rec.Profile.Threads)
	}
	if len(rec.Manifest.Threads) != 2 {
		t.Fatalf("manifest lists threads %v, want 2 entries", rec.Manifest.Threads)
	}
	for _, tid := range rec.Manifest.Threads {
		if _, serr := s.fsys.Stat(filepath.Join(s.dir, "threaded", ThreadTraceName(tid))); serr != nil {
			t.Errorf("thread %d trace missing: %v", tid, serr)
		}
	}

	liveJSON, err := rec.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for name, replay := range map[string]func() (*Run, error){
		"sequential": func() (*Run, error) { return s.Replay("threaded") },
		"parallel":   func() (*Run, error) { return s.ReplayParallel(t.Context(), "threaded", 4) },
	} {
		rep, err := replay()
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		repJSON, err := rep.Profile.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(liveJSON, repJSON) {
			t.Errorf("%s replay differs from live profile\nlive:\n%s\nreplayed:\n%s", name, liveJSON, repJSON)
		}
	}
}

// TestConcurrentRecordSameName is the create-race regression test: N
// goroutines racing to record under one run name must yield exactly one
// winner — the directory is an exclusive reservation, losers get the
// typed already-exists error, and the stored run replays intact (no
// torn manifest, no interleaved trace bytes).
func TestConcurrentRecordSameName(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.RunningExample(workloads.Random, 24, 8, 1)
	const racers = 8
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Record("contested", src, "race", algoprof.Config{Seed: 1}, trace.WriterOptions{})
		}(i)
	}
	wg.Wait()

	var won, lost int
	for i, err := range errs {
		switch {
		case err == nil:
			won++
		default:
			var ee *RunExistsError
			if !errors.As(err, &ee) {
				t.Errorf("racer %d lost with %v (%T), want *RunExistsError", i, err, err)
				continue
			}
			if ee.Run != "contested" {
				t.Errorf("racer %d error names run %q, want contested", i, ee.Run)
			}
			lost++
		}
	}
	if won != 1 || lost != racers-1 {
		t.Fatalf("%d winners and %d typed losers, want exactly 1 and %d", won, lost, racers-1)
	}
	// The winner's run is intact and replayable.
	if _, err := s.Replay("contested"); err != nil {
		t.Fatalf("winning run does not replay: %v", err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v; want exactly [contested]", names, err)
	}
}
