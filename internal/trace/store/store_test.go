package store

import (
	"bytes"
	"strings"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// TestStoreRecordReplayRoundTrip records a run, replays it offline, and
// checks the replayed profile matches the recorded one byte for byte
// (JSON form, which covers algorithms, cost functions, outputs, and the
// instruction count).
func TestStoreRecordReplayRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.RunningExample(workloads.Random, 24, 8, 2)
	rec, err := s.Record("base", src, "running-example", algoprof.Config{Seed: 1}, trace.WriterOptions{Compress: true})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if rec.Manifest.ProgramSHA256 == "" || rec.Manifest.Instructions == 0 {
		t.Errorf("manifest incomplete: %+v", rec.Manifest)
	}
	if len(rec.Manifest.CostKeys) == 0 {
		t.Errorf("manifest carries no interned cost keys")
	}

	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "base" {
		t.Fatalf("List = %v, %v; want [base]", names, err)
	}

	rep, err := s.Replay("base")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	liveJSON, err := rec.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := rep.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Errorf("replayed profile differs from recorded profile\nlive:\n%s\nreplayed:\n%s", liveJSON, replayJSON)
	}
	if rec.Profile.Tree() != rep.Profile.Tree() {
		t.Errorf("replayed tree differs from recorded tree")
	}
}

// TestDiffFlagsComplexityRegression is the subsystem's acceptance check:
// the same program point (the running example's insertion sort) recorded
// on sorted input fits a linear cost function, on reversed input a
// quadratic one, and the differ must flag that n → n² model-class change
// as a complexity regression — distinct from mere constant-factor drift.
func TestDiffFlagsComplexityRegression(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.Record("fast", workloads.RunningExample(workloads.Sorted, 49, 6, 2),
		"sorted-input", algoprof.Config{Seed: 1}, trace.WriterOptions{})
	if err != nil {
		t.Fatalf("Record fast: %v", err)
	}
	slow, err := s.Record("slow", workloads.RunningExample(workloads.Reversed, 49, 6, 2),
		"reversed-input", algoprof.Config{Seed: 1}, trace.WriterOptions{})
	if err != nil {
		t.Fatalf("Record slow: %v", err)
	}

	d := DiffRuns(&fast.Manifest, &slow.Manifest)
	if !d.HasComplexityRegression() {
		t.Fatalf("diff did not flag a complexity regression:\n%s", d.Render())
	}
	var found bool
	for _, e := range d.Entries {
		if e.Algorithm == "List.sort/loop1" && e.Kind == ComplexityRegression {
			found = true
			if e.NewModel != "n^2" {
				t.Errorf("sort regression new model = %q, want n^2", e.NewModel)
			}
		}
		if e.Algorithm == "List.sort/loop1" && e.Kind == ConstantFactor {
			t.Errorf("sort model change misclassified as constant-factor drift")
		}
	}
	if !found {
		t.Errorf("no complexity regression reported for List.sort/loop1:\n%s", d.Render())
	}
	if !strings.Contains(d.Render(), "COMPLEXITY REGRESSION") {
		t.Errorf("rendered diff does not highlight the regression:\n%s", d.Render())
	}

	// The reverse direction is an improvement, not a regression.
	back := DiffRuns(&slow.Manifest, &fast.Manifest)
	if back.HasComplexityRegression() {
		t.Errorf("reverse diff should not flag a regression:\n%s", back.Render())
	}
}

// TestDiffConstantFactor checks that a pure workload-scale change under the
// same model is reported as constant-factor drift, not a model change.
func TestDiffConstantFactor(t *testing.T) {
	mkManifest := func(coeff float64) *Manifest {
		return &Manifest{Algorithms: []algoprof.Algorithm{{
			Name: "A.f/loop1",
			CostFunctions: []algoprof.CostFunction{{
				InputLabel: "in", Model: "n", Coeff: coeff,
			}},
		}}}
	}
	d := DiffRuns(mkManifest(1.0), mkManifest(2.0))
	if len(d.Entries) != 1 || d.Entries[0].Kind != ConstantFactor {
		t.Fatalf("diff = %+v, want one constant-factor entry", d.Entries)
	}
	if d.HasComplexityRegression() {
		t.Errorf("constant-factor drift flagged as complexity regression")
	}
	same := DiffRuns(mkManifest(1.0), mkManifest(1.05))
	if same.Entries[0].Kind != Unchanged {
		t.Errorf("5%% drift = %v, want unchanged", same.Entries[0].Kind)
	}
}
