package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace"
)

func openTestJournal(t *testing.T, dir string) (*Journal, []JournalEntry) {
	t.Helper()
	j, entries, err := OpenJournal(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, entries
}

// TestJournalAppendReadBack: appended entries come back in order on the
// next open.
func TestJournalAppendReadBack(t *testing.T) {
	dir := t.TempDir()
	j, entries := openTestJournal(t, dir)
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d entries", len(entries))
	}
	want := []JournalEntry{
		{Op: JournalEnqueue, ID: "j1", Tenant: "a", Program: "class C{}", Persist: true},
		{Op: JournalEnqueue, ID: "j2", Tenant: "b"},
		{Op: JournalTerminal, ID: "j1", Status: "ok", Events: 123, TraceBytes: 456},
	}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	_, got := openTestJournal(t, dir)
	if len(got) != len(want) {
		t.Fatalf("read back %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].ID != want[i].ID || got[i].Events != want[i].Events {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestJournalTornTailRecovered: a crash mid-append leaves a torn last
// line; reopening drops it and keeps everything before it.
func TestJournalTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JournalName)
	j, _ := openTestJournal(t, dir)
	j.Append(JournalEntry{Op: JournalEnqueue, ID: "j1"})
	j.Append(JournalEntry{Op: JournalTerminal, ID: "j1", Status: "ok"})
	j.Close()

	// Simulate kill -9 mid-write: half a JSON line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"enqueue","id":"j2","progr`)
	f.Close()

	_, entries := openTestJournal(t, dir)
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2 (torn tail dropped)", len(entries))
	}
	if entries[1].ID != "j1" || entries[1].Op != JournalTerminal {
		t.Fatalf("unexpected surviving entries: %+v", entries)
	}
}

// TestJournalCompactAndReopen: compaction atomically rewrites the file
// and appends keep working afterwards.
func TestJournalCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	for i := 0; i < 5; i++ {
		j.Append(JournalEntry{Op: JournalEnqueue, ID: string(rune('a' + i))})
	}
	if err := j.Compact([]JournalEntry{{Op: JournalCharge, Tenant: "a", Events: 99, Jobs: 5}}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append(JournalEntry{Op: JournalEnqueue, ID: "post"}); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	j.Close()
	_, entries := openTestJournal(t, dir)
	if len(entries) != 2 || entries[0].Op != JournalCharge || entries[1].ID != "post" {
		t.Fatalf("after compact: %+v", entries)
	}
}

// TestJournalTransientFaultsRetried: transient write faults are absorbed
// by the retry policy; the entry still lands durably.
func TestJournalTransientFaultsRetried(t *testing.T) {
	dir := t.TempDir()
	plan := faultinject.NewPlan(7)
	plan.Arm(faultinject.PointWrite, faultinject.PointConfig{
		Prob: 1, MaxFires: 1, Class: faultinject.Transient, Errno: syscall.EINTR,
	})
	retry := faultinject.RetryPolicy{Attempts: 3, Jitter: 0.5, Seed: 7}
	j, _, err := OpenJournalFS(filepath.Join(dir, JournalName), plan.FS(faultinject.OS()), retry, nil)
	if err != nil {
		t.Fatalf("OpenJournalFS: %v", err)
	}
	if err := j.Append(JournalEntry{Op: JournalEnqueue, ID: "j1"}); err != nil {
		t.Fatalf("Append under transient fault: %v", err)
	}
	j.Close()
	_, entries := openTestJournal(t, dir)
	if len(entries) != 1 || entries[0].ID != "j1" {
		t.Fatalf("entry lost under transient fault: %+v", entries)
	}
}

// TestReduceJournal: pending = enqueued minus terminal; duplicate
// terminals are exactly-once; charges pass through.
func TestReduceJournal(t *testing.T) {
	st := ReduceJournal([]JournalEntry{
		{Op: JournalCharge, Tenant: "old", Events: 10},
		{Op: JournalEnqueue, ID: "a"},
		{Op: JournalEnqueue, ID: "b"},
		{Op: JournalEnqueue, ID: "c"},
		{Op: JournalTerminal, ID: "b", Status: "ok"},
		{Op: JournalTerminal, ID: "b", Status: "failed"}, // duplicate: dropped
		{Op: JournalTerminal, ID: "ghost", Status: "ok"}, // terminal without enqueue
	})
	if len(st.Pending) != 2 || st.Pending[0].ID != "a" || st.Pending[1].ID != "c" {
		t.Fatalf("pending = %+v", st.Pending)
	}
	if len(st.Terminal) != 2 || st.Terminal[0].Status != "ok" || st.Terminal[1].ID != "ghost" {
		t.Fatalf("terminal = %+v", st.Terminal)
	}
	if len(st.Charges) != 1 || st.Charges[0].Tenant != "old" {
		t.Fatalf("charges = %+v", st.Charges)
	}
}

// ingestFixture records a real run into a scratch store and returns its
// files, so ingestion tests move genuine artifacts.
func ingestFixture(t *testing.T, seed uint64) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Record("fix", smallSrc(), "ingest-test", algoprof.Config{Seed: seed}, trace.WriterOptions{}); err != nil {
		t.Fatalf("Record fixture: %v", err)
	}
	files := map[string][]byte{}
	ents, err := os.ReadDir(filepath.Join(dir, "fix"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, "fix", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// TestIngestRunRoundTrip: an ingested run lists, loads, and replays like
// a locally recorded one.
func TestIngestRunRoundTrip(t *testing.T) {
	files := ingestFixture(t, 3)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := st.IngestRun("remote-1", files)
	if err != nil {
		t.Fatalf("IngestRun: %v", err)
	}
	if n != int64(len(files[TraceName])) {
		t.Fatalf("trace bytes %d, want %d", n, len(files[TraceName]))
	}
	names, err := st.List()
	if err != nil || len(names) != 1 || names[0] != "remote-1" {
		t.Fatalf("List after ingest: %v %v", names, err)
	}
	run, err := st.Replay("remote-1")
	if err != nil {
		t.Fatalf("Replay ingested run: %v", err)
	}
	if run.Profile == nil || len(run.Manifest.Algorithms) == 0 {
		t.Fatal("ingested run replayed empty")
	}
}

// TestIngestRunIdempotentOnIdenticalContent: re-ingesting the same result
// (a re-dispatched job whose first attempt landed) succeeds without
// touching the directory; different content replaces the partial debris.
func TestIngestRunIdempotentOnIdenticalContent(t *testing.T) {
	files := ingestFixture(t, 3)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetLogf(nil)
	if _, err := st.IngestRun("r", files); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if _, err := st.IngestRun("r", files); err != nil {
		t.Fatalf("identical re-ingest not idempotent: %v", err)
	}

	// Partial debris: same name, truncated trace. A conflicting ingest
	// replaces it.
	if err := os.WriteFile(filepath.Join(dir, "r", TraceName), files[TraceName][:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestRun("r", files); err != nil {
		t.Fatalf("conflicting ingest: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "r", TraceName))
	if err != nil || len(got) != len(files[TraceName]) {
		t.Fatalf("trace not replaced: %d bytes, want %d (%v)", len(got), len(files[TraceName]), err)
	}
}

// TestIngestRunRejectsGarbage: a missing or unparseable manifest and
// path-escaping file names are typed corruption, and nothing lands.
func TestIngestRunRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases := []map[string][]byte{
		{TraceName: []byte("x")},                                  // no manifest
		{ManifestName: []byte("{")},                               // garbage manifest
		{ManifestName: mustManifest(t), "../escape": []byte("x")}, // path escape
	}
	for i, files := range cases {
		if _, err := st.IngestRun("bad", files); err == nil {
			t.Fatalf("case %d: garbage ingest accepted", i)
		} else if faultinject.ClassOf(err) != faultinject.Corruption {
			t.Fatalf("case %d: class %v, want corruption (%v)", i, faultinject.ClassOf(err), err)
		}
	}
	names, _ := st.List()
	if len(names) != 0 {
		t.Fatalf("garbage ingest left runs: %v", names)
	}
}

func mustManifest(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(Manifest{FormatVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	return data
}
