// Fleet diff: one baseline run's trace compared against every other run in
// the store, fanned out over the experiments worker pool. The per-pair work
// is the Merkle differ (trace.DiffTraceFiles), so each comparison reads two
// trace footers — or, when the manifests already carry matching Merkle
// roots, nothing at all.
package store

import (
	"path/filepath"
	"sort"

	"algoprof/internal/experiments"
	"algoprof/internal/trace"
)

// FleetEntry is one run's outcome in a fleet diff.
type FleetEntry struct {
	// Run names the compared run.
	Run string `json:"run"`
	// Root is the run's trace Merkle root (hex; empty for v1 traces).
	Root string `json:"root,omitempty"`
	// Diff is the frame-level trace diff against the baseline; nil when the
	// comparison failed (see Err) or was skipped via matching manifest
	// roots (then Identical is set directly).
	Diff *trace.TraceDiff `json:"diff,omitempty"`
	// Identical mirrors Diff.Identical, and is also set when matching
	// manifest roots proved identity without touching the trace files.
	Identical bool `json:"identical"`
	// SkippedByRoot marks entries proven identical from manifests alone.
	SkippedByRoot bool `json:"skipped_by_root,omitempty"`
	// Err is the failure, when the run could not be compared (missing or
	// truncated trace, corrupt footer).
	Err string `json:"err,omitempty"`
}

// FleetReport is a whole fleet diff: the baseline, every comparison, and
// the aggregate cost.
type FleetReport struct {
	Baseline     string       `json:"baseline"`
	BaselineRoot string       `json:"baseline_root,omitempty"`
	Entries      []FleetEntry `json:"entries"`
	// Identical, Changed, Failed partition the entries.
	Identical int `json:"identical"`
	Changed   int `json:"changed"`
	Failed    int `json:"failed"`
	// BytesRead sums the file bytes all comparisons read (footers plus any
	// full-scan fallbacks) — the number that shows the Merkle index paying
	// for itself against len(traces) full reads.
	BytesRead int64 `json:"bytes_read"`
}

// FleetDiff compares baseline's trace against every run in runs (all other
// stored runs when runs is empty), in parallel on the experiments pool.
// Per-run failures are reported in their entries, not returned: one
// truncated trace must not hide the rest of the fleet.
func (s *Store) FleetDiff(baseline string, runs []string) (*FleetReport, error) {
	return s.FleetDiffTenant(baseline, runs, "")
}

// FleetDiffTenant is FleetDiff scoped to one tenant: when runs is empty,
// only stored runs whose manifests name that tenant are compared (the
// empty tenant means no filter). An explicit runs list is taken as given —
// the caller already chose it.
func (s *Store) FleetDiffTenant(baseline string, runs []string, tenant string) (*FleetReport, error) {
	baseDir, err := s.runDir(baseline)
	if err != nil {
		return nil, err
	}
	baseManifest, err := s.Load(baseline)
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		all, err := s.ListTenant(tenant)
		if err != nil {
			return nil, err
		}
		for _, name := range all {
			if name != baseline {
				runs = append(runs, name)
			}
		}
	}
	sort.Strings(runs)
	basePath := filepath.Join(baseDir, traceFile)
	baseRoot := baseManifest.Manifest.TraceMerkleRoot
	report := &FleetReport{
		Baseline:     baseline,
		BaselineRoot: baseRoot,
		Entries:      make([]FleetEntry, len(runs)),
	}
	experiments.ForEachIndex(len(runs), func(i int) error {
		e := &report.Entries[i]
		e.Run = runs[i]
		dir, err := s.runDir(runs[i])
		if err != nil {
			e.Err = err.Error()
			return nil
		}
		if m, err := s.Load(runs[i]); err == nil {
			e.Root = m.Manifest.TraceMerkleRoot
		}
		if baseRoot != "" && e.Root == baseRoot {
			e.Identical = true
			e.SkippedByRoot = true
			return nil
		}
		d, err := trace.DiffTraceFiles(basePath, filepath.Join(dir, traceFile))
		if err != nil {
			e.Err = err.Error()
			return nil
		}
		e.Diff = d
		e.Identical = d.Identical
		return nil
	})
	for i := range report.Entries {
		e := &report.Entries[i]
		switch {
		case e.Err != "":
			report.Failed++
		case e.Identical:
			report.Identical++
		default:
			report.Changed++
		}
		if e.Diff != nil {
			report.BytesRead += e.Diff.BytesReadOld + e.Diff.BytesReadNew
		}
	}
	return report, nil
}
