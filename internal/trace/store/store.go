// Package store keeps a directory of recorded profiling runs. Each run is
// one subdirectory holding the program source, the event trace, and a
// manifest with the run's identity (program hash, workload, timestamp,
// configuration) plus its fitted cost functions — the portable artifact the
// paper's cost-function view produces. Stored runs replay offline through
// internal/trace, and pairs of runs diff into algorithmic regressions (see
// diff.go).
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
)

// File names inside a run directory.
const (
	manifestFile = "manifest.json"
	programFile  = "program.mj"
	traceFile    = "trace.bin"
)

// Artifact names inside a run directory, exported for audit tooling that
// inspects run directories without going through the Store API.
const (
	ManifestName = manifestFile
	ProgramName  = programFile
	TraceName    = traceFile
)

// ThreadTraceName is the per-thread trace file for spawned thread tid,
// stored beside the main trace.bin; the manifest's Threads field lists
// which ids exist.
func ThreadTraceName(tid int) string { return fmt.Sprintf("trace-t%d.bin", tid) }

// Manifest describes one stored run.
type Manifest struct {
	// FormatVersion is the trace format version the run was written with,
	// read back from the stored trace file itself (not assumed from the
	// writer's current default).
	FormatVersion int `json:"format_version"`
	// TraceMerkleRoot is the hex Merkle root over the trace's frames (empty
	// for v1 and interrupted traces, which carry no Merkle footer). The
	// differ and fleet scan compare roots to skip identical traces without
	// reading their frames.
	TraceMerkleRoot string `json:"trace_merkle_root,omitempty"`
	// CreatedUnix is the recording time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// ProgramSHA256 hashes the profiled MJ source.
	ProgramSHA256 string `json:"program_sha256"`
	// Workload is a caller-supplied label for what the program ran.
	Workload string `json:"workload,omitempty"`
	// Tenant names the tenant the run was recorded for. Empty means a
	// legacy (or single-user) run: manifests written before the field
	// existed parse to "" and keep listing and replaying unchanged.
	Tenant string `json:"tenant,omitempty"`
	// Config is the profiling configuration; replay reuses it so the
	// offline profile matches the recorded one.
	Config algoprof.Config `json:"config"`
	// Stdout and Output are the program's results; they are not part of
	// the event stream, so the manifest carries them across replays.
	Stdout []string `json:"stdout,omitempty"`
	Output []string `json:"output,omitempty"`
	// Instructions is the executed bytecode instruction count, summed over
	// all threads.
	Instructions uint64 `json:"instructions"`
	// Threads lists the spawned thread ids whose per-thread traces
	// (trace-t<tid>.bin) sit beside the main trace; empty for
	// single-threaded runs. Replay merges them back into one report.
	Threads []int `json:"threads,omitempty"`
	// CostKeys is the run's interned cost-counter vocabulary, in dense-id
	// order.
	CostKeys []string `json:"cost_keys,omitempty"`
	// Algorithms are the profile's fitted results — the diffable artifact.
	Algorithms []algoprof.Algorithm `json:"algorithms"`
	// Degraded marks a run whose fidelity was cut — a resource limit
	// tripped, or the recording was interrupted. DegradedReasons says
	// why. A run directory carries a provisional degraded manifest
	// ("recording-interrupted") from the moment recording starts until it
	// completes, so a crash at any point leaves a run that lists and
	// partially replays instead of a corrupt directory.
	Degraded        bool     `json:"degraded,omitempty"`
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
}

// Run is one stored run: its manifest plus, when freshly recorded or
// replayed, the full profile.
type Run struct {
	Name     string
	Dir      string
	Manifest Manifest
	// Profile is non-nil after Record or Replay; Load leaves it nil.
	Profile *algoprof.Profile
}

// Store is a directory of runs. All filesystem access goes through an
// faultinject.FS, so fault schedules can interpose on every operation;
// transient I/O failures are retried under a bounded backoff policy, while
// corruption and resource faults surface immediately as typed errors.
type Store struct {
	dir   string
	fsys  faultinject.FS
	retry faultinject.RetryPolicy
	logf  func(format string, args ...any)
}

// Open creates the store directory if needed.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultinject.OS())
}

// OpenFS is Open with an explicit filesystem — the fault-injection seam.
// Production callers use Open; chaos harnesses pass a plan-wrapped FS.
func OpenFS(dir string, fsys faultinject.FS) (*Store, error) {
	s := &Store{dir: dir, fsys: fsys, retry: faultinject.DefaultRetry, logf: log.Printf}
	if err := s.retry.Do(func() error { return fsys.MkdirAll(dir, 0o755) }); err != nil {
		return nil, err
	}
	return s, nil
}

// SetRetry replaces the transient-I/O retry policy (tests shorten it).
func (s *Store) SetRetry(p faultinject.RetryPolicy) { s.retry = p }

// SetLogf replaces the logger List uses to report skipped garbage
// entries; nil silences it.
func (s *Store) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// CorruptRunError marks a stored run whose artifacts are damaged — an
// unparseable manifest, a program hash mismatch, or a corrupt trace. It
// classifies as faultinject.Corruption.
type CorruptRunError struct {
	// Run names the damaged run.
	Run string
	// Err is the underlying damage report.
	Err error
}

// Error implements error.
func (e *CorruptRunError) Error() string {
	return fmt.Sprintf("store: run %s corrupt: %s", e.Run, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CorruptRunError) Unwrap() error { return e.Err }

// FaultClass implements faultinject.Classifier.
func (e *CorruptRunError) FaultClass() faultinject.FaultClass { return faultinject.Corruption }

// RunExistsError reports a Record against a run name already present in
// the store — either a finished run or one another recorder reserved
// concurrently. Run directories are create-once: the recording that wins
// the exclusive reservation owns the name, everyone else fails typed.
type RunExistsError struct {
	// Run names the contested run.
	Run string
}

// Error implements error.
func (e *RunExistsError) Error() string {
	return fmt.Sprintf("store: run %s already exists", e.Run)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) runDir(name string) (string, error) {
	if name == "" || name != filepath.Base(name) {
		return "", fmt.Errorf("store: invalid run name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// List names the stored runs, sorted. Unreadable or garbage entries — a
// directory with a missing or unparseable manifest, a stray file — are
// logged and skipped, so one damaged run never hides the rest of the
// store.
func (s *Store) List() ([]string, error) { return s.ListTenant("") }

// ListTenant is List scoped to one tenant: only runs whose manifest names
// that tenant are returned. The empty tenant means no filter — every run
// lists, including legacy manifests written before the tenant field
// existed (which parse to tenant "").
func (s *Store) ListTenant(tenant string) ([]string, error) {
	var ents []os.DirEntry
	err := s.retry.Do(func() (e error) {
		ents, e = s.fsys.ReadDir(s.dir)
		return e
	})
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		data, err := s.fsys.ReadFile(filepath.Join(s.dir, e.Name(), manifestFile))
		if err != nil {
			s.logf("store: skipping run %s: %v", e.Name(), err)
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			s.logf("store: skipping run %s: garbage manifest: %v", e.Name(), err)
			continue
		}
		if tenant != "" && m.Tenant != tenant {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// interruptedReason marks a run whose recording did not finish: it is
// written into the provisional manifest before the VM starts and replaced
// only when recording completes, so it survives any crash in between.
const interruptedReason = "recording-interrupted"

// Record profiles src under cfg, capturing the event trace, and stores the
// run as name. The run directory holds the source, the trace, and the
// manifest with the fitted cost functions.
func (s *Store) Record(name, src, workload string, cfg algoprof.Config, topts trace.WriterOptions) (*Run, error) {
	return s.RecordContext(context.Background(), name, src, workload, cfg, topts)
}

// RecordContext is Record with cooperative cancellation. Crash safety: the
// program source and a provisional manifest (marked degraded with reason
// "recording-interrupted") are persisted atomically before the profiled run
// starts, so a crash or kill at any point — including mid-trace-write —
// leaves a directory that List still names and Replay partially recovers.
// On cancellation or a contained panic the partial trace and provisional
// manifest are kept and the *algoprof.PartialError is returned; only
// outright setup failures remove the run directory again.
func (s *Store) RecordContext(ctx context.Context, name, src, workload string, cfg algoprof.Config, topts trace.WriterOptions) (*Run, error) {
	return s.RecordTenantContext(ctx, name, src, workload, "", cfg, topts)
}

// RecordTenantContext is RecordContext with the run stamped as tenant's.
// The tenant lands in the manifest — including the provisional one, so
// even a crashed recording stays attributable — and scopes ListTenant and
// FleetDiffTenant.
func (s *Store) RecordTenantContext(ctx context.Context, name, src, workload, tenant string, cfg algoprof.Config, topts trace.WriterOptions) (*Run, error) {
	dir, err := s.runDir(name)
	if err != nil {
		return nil, err
	}
	// Exclusive reservation: creating the run directory itself is the
	// atomic claim on the name. Two concurrent recorders of the same run
	// id race on one Mkdir; the loser fails typed instead of the two
	// interleaving writes into one directory.
	err = s.retry.Do(func() error {
		merr := s.fsys.Mkdir(dir, 0o755)
		if errors.Is(merr, os.ErrExist) {
			return &RunExistsError{Run: name}
		}
		return merr
	})
	if err != nil {
		return nil, err
	}
	if err := s.writeFileAtomic(filepath.Join(dir, programFile), []byte(src), 0o644); err != nil {
		return nil, err
	}
	sum := sha256.Sum256([]byte(src))
	m := Manifest{
		FormatVersion:   trace.Version,
		CreatedUnix:     time.Now().Unix(),
		ProgramSHA256:   hex.EncodeToString(sum[:]),
		Workload:        workload,
		Tenant:          tenant,
		Config:          cfg,
		Degraded:        true,
		DegradedReasons: []string{interruptedReason},
	}
	if err := s.writeManifest(dir, &m); err != nil {
		return nil, err
	}
	var tf faultinject.File
	err = s.retry.Do(func() (e error) {
		tf, e = s.fsys.Create(filepath.Join(dir, traceFile))
		return e
	})
	if err != nil {
		return nil, err
	}
	// Spawned threads each record into their own trace-t<tid>.bin beside
	// the main trace; the sink is called concurrently from spawning
	// threads, so the id list is mutex-guarded.
	var (
		tidMu sync.Mutex
		tids  []int
	)
	sink := func(tid int) (io.WriteCloser, error) {
		var f faultinject.File
		err := s.retry.Do(func() (e error) {
			f, e = s.fsys.Create(filepath.Join(dir, ThreadTraceName(tid)))
			return e
		})
		if err != nil {
			return nil, err
		}
		tidMu.Lock()
		tids = append(tids, tid)
		tidMu.Unlock()
		return f, nil
	}
	prof, runErr := algoprof.RecordSinkContext(ctx, src, cfg, tf, topts, sink)
	if cerr := tf.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	sort.Ints(tids)
	m.Threads = tids
	if runErr != nil {
		var pe *algoprof.PartialError
		if errors.As(runErr, &pe) {
			// Interrupted, not failed: keep the partial traces and fold the
			// salvaged profile (if any) into the still-degraded manifest so
			// the stored run is honest about what it holds.
			if pe.Profile != nil {
				fillManifest(&m, pe.Profile)
				m.Degraded = true
				m.DegradedReasons = append([]string{interruptedReason}, pe.Profile.DegradedReasons...)
				s.writeManifest(dir, &m)
			}
			return nil, runErr
		}
		// A genuine failure (compile error, internal error) stores nothing:
		// drop the provisional files and the directory so the run does not
		// list and the name is free to reserve again.
		s.fsys.Remove(filepath.Join(dir, traceFile))
		for _, tid := range tids {
			s.fsys.Remove(filepath.Join(dir, ThreadTraceName(tid)))
		}
		s.fsys.Remove(filepath.Join(dir, manifestFile))
		s.fsys.Remove(filepath.Join(dir, programFile))
		s.fsys.Remove(dir)
		return nil, runErr
	}

	fillManifest(&m, prof)
	m.Degraded = prof.Degraded
	m.DegradedReasons = prof.DegradedReasons
	s.stampTraceIndex(dir, &m)
	if err := s.writeManifest(dir, &m); err != nil {
		return nil, err
	}
	return &Run{Name: name, Dir: dir, Manifest: m, Profile: prof}, nil
}

// stampTraceIndex records what the stored trace file actually is — its
// format version and Merkle root, read back from the file's footer — into
// the manifest. Provenance over assumption: a manifest never claims a
// version the bytes on disk don't carry. Best-effort: a trace whose footer
// is unreadable (chaos FS, torn file) keeps the writer-default stamp.
func (s *Store) stampTraceIndex(dir string, m *Manifest) {
	ix, err := trace.OpenIndex(filepath.Join(dir, traceFile))
	if err != nil {
		return
	}
	m.FormatVersion = int(ix.Version)
	if ix.HasMerkle {
		m.TraceMerkleRoot = ix.Root.String()
	}
}

// fillManifest copies a (possibly partial) profile's results into m.
func fillManifest(m *Manifest, prof *algoprof.Profile) {
	m.Stdout = prof.Stdout
	m.Output = prof.Output
	m.Instructions = prof.Instructions
	m.Algorithms = prof.Algorithms
	m.CostKeys = nil
	if coreProf, _ := prof.Raw(); coreProf != nil {
		for _, k := range coreProf.CostKeys() {
			m.CostKeys = append(m.CostKeys, k.String())
		}
	}
}

func (s *Store) writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFileAtomic(filepath.Join(dir, manifestFile), append(data, '\n'), 0o644)
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so readers never observe a torn or empty file —
// they see either the old content or the new, even across a crash.
// Transient failures retry the whole temp+write+rename sequence (the temp
// file is removed on every failure, so a retry starts clean).
func (s *Store) writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	return s.retry.Do(func() error { return writeFileAtomicFS(s.fsys, path, data, perm) })
}

func writeFileAtomicFS(fsys faultinject.FS, path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	f, err := fsys.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = f.Chmod(perm)
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		fsys.Remove(tmp)
	}
	return err
}

// Load reads a stored run's manifest without replaying its trace.
func (s *Store) Load(name string) (*Run, error) {
	dir, err := s.runDir(name)
	if err != nil {
		return nil, err
	}
	var data []byte
	err = s.retry.Do(func() (e error) {
		data, e = s.fsys.ReadFile(filepath.Join(dir, manifestFile))
		return e
	})
	if err != nil {
		return nil, err
	}
	r := &Run{Name: name, Dir: dir}
	if err := json.Unmarshal(data, &r.Manifest); err != nil {
		return nil, &CorruptRunError{Run: name, Err: err}
	}
	return r, nil
}

// Replay loads a stored run and re-runs the profiler offline on its
// recorded trace, under the manifest's configuration. The replayed profile
// is byte-identical to the recorded one; program outputs come from the
// manifest.
func (s *Store) Replay(name string) (*Run, error) {
	return s.ReplayContext(context.Background(), name)
}

// ReplayContext is Replay with cooperative cancellation, checked at every
// trace frame. Runs whose recording was interrupted (crash-shaped traces
// with no index or trailer) replay through the reader's recovery path and
// come back as degraded profiles covering the captured prefix.
func (s *Store) ReplayContext(ctx context.Context, name string) (*Run, error) {
	return s.replayWith(ctx, name, algoprof.ReplayProgramThreadsContext)
}

// ReplayParallel is Replay with the trace's frame decoding fanned out over
// workers goroutines (≤ 0 means GOMAXPROCS); the resulting profile is
// byte-identical to a sequential replay's. v1 and interrupted traces fall
// back to the sequential path automatically.
func (s *Store) ReplayParallel(ctx context.Context, name string, workers int) (*Run, error) {
	return s.replayWith(ctx, name, func(ctx context.Context, prog *bytecode.Program, cfg algoprof.Config, tr *trace.Reader, threads map[int]*trace.Reader) (*algoprof.Profile, error) {
		return algoprof.ReplayProgramThreadsParallel(ctx, prog, cfg, tr, threads, workers)
	})
}

// replayWith loads a run and drives one replay strategy over its traces:
// the main trace plus, for threaded runs, one reader per thread id the
// manifest lists.
func (s *Store) replayWith(ctx context.Context, name string, replay func(context.Context, *bytecode.Program, algoprof.Config, *trace.Reader, map[int]*trace.Reader) (*algoprof.Profile, error)) (*Run, error) {
	r, err := s.Load(name)
	if err != nil {
		return nil, err
	}
	var src []byte
	err = s.retry.Do(func() (e error) {
		src, e = s.fsys.ReadFile(filepath.Join(r.Dir, programFile))
		return e
	})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(src)
	if got := hex.EncodeToString(sum[:]); got != r.Manifest.ProgramSHA256 {
		return nil, &CorruptRunError{Run: name, Err: fmt.Errorf("program hash mismatch (manifest %s, file %s)",
			r.Manifest.ProgramSHA256, got)}
	}
	prog, err := compiler.CompileSource(string(src))
	if err != nil {
		return nil, err
	}
	var raw []byte
	err = s.retry.Do(func() (e error) {
		raw, e = s.fsys.ReadFile(filepath.Join(r.Dir, traceFile))
		return e
	})
	if err != nil {
		return nil, err
	}
	tr, err := trace.NewReader(raw)
	if err != nil {
		return nil, &CorruptRunError{Run: name, Err: err}
	}
	var threads map[int]*trace.Reader
	for _, tid := range r.Manifest.Threads {
		var traw []byte
		err = s.retry.Do(func() (e error) {
			traw, e = s.fsys.ReadFile(filepath.Join(r.Dir, ThreadTraceName(tid)))
			return e
		})
		if err != nil {
			return nil, err
		}
		ttr, err := trace.NewReader(traw)
		if err != nil {
			return nil, &CorruptRunError{Run: name, Err: fmt.Errorf("thread %d: %w", tid, err)}
		}
		if threads == nil {
			threads = map[int]*trace.Reader{}
		}
		threads[tid] = ttr
	}
	prof, err := replay(ctx, prog, r.Manifest.Config, tr, threads)
	if err != nil {
		return nil, err
	}
	prof.Stdout = r.Manifest.Stdout
	prof.Output = r.Manifest.Output
	r.Profile = prof
	return r, nil
}
