package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Discard removes a run directory and everything in it, through the
// store's (fault-injectable) filesystem. Recovery uses it to clear the
// partial artifacts of a recording that was running when the daemon died,
// before re-executing the job under the same name.
func (s *Store) Discard(name string) error {
	dir, err := s.runDir(name)
	if err != nil {
		return err
	}
	ents, err := s.fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		if err := s.fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return s.fsys.Remove(dir)
}

// IngestRun lands a remotely recorded run — the artifact files a dispatch
// worker shipped back — into the store as name, with the same durability
// discipline as a local recording: the directory itself is the exclusive
// name reservation, every file is written via temp+rename, and the
// manifest lands last so the run never lists half-ingested.
//
// Ingestion is idempotent by content: if the name already exists with
// byte-identical files (a re-dispatched job whose first result landed
// just before the daemon crashed), IngestRun succeeds without rewriting.
// If it exists with different content, the existing directory is the
// partial debris of an interrupted attempt — the journal had no terminal
// entry, or the content would have matched — so it is discarded and
// replaced. It returns the size of the stored main trace (the
// trace-byte-budget charge).
func (s *Store) IngestRun(name string, files map[string][]byte) (int64, error) {
	dir, err := s.runDir(name)
	if err != nil {
		return 0, err
	}
	manifest, ok := files[ManifestName]
	if !ok {
		return 0, &CorruptRunError{Run: name, Err: fmt.Errorf("ingest without %s", ManifestName)}
	}
	var m Manifest
	if err := json.Unmarshal(manifest, &m); err != nil {
		return 0, &CorruptRunError{Run: name, Err: fmt.Errorf("garbage ingested manifest: %w", err)}
	}

	err = s.retry.Do(func() error {
		merr := s.fsys.Mkdir(dir, 0o755)
		if errors.Is(merr, os.ErrExist) {
			return &RunExistsError{Run: name}
		}
		return merr
	})
	if err != nil {
		var exists *RunExistsError
		if !errors.As(err, &exists) {
			return 0, err
		}
		if s.sameContent(dir, files) {
			// Conflict verified identical: the previous attempt's result
			// already landed. Exactly-once by content.
			return int64(len(files[TraceName])), nil
		}
		s.logf("store: ingest %s: replacing partial previous attempt", name)
		if err := s.Discard(name); err != nil {
			return 0, err
		}
		err = s.retry.Do(func() error { return s.fsys.Mkdir(dir, 0o755) })
		if err != nil {
			return 0, err
		}
	}

	// Deterministic order, manifest last: a crash mid-ingest leaves a
	// directory the listing skips (no manifest) instead of a run that
	// looks complete.
	names := make([]string, 0, len(files))
	for fn := range files {
		if fn != ManifestName {
			names = append(names, fn)
		}
	}
	sort.Strings(names)
	names = append(names, ManifestName)
	for _, fn := range names {
		if fn != filepath.Base(fn) {
			return 0, &CorruptRunError{Run: name, Err: fmt.Errorf("ingest file name %q escapes the run directory", fn)}
		}
		if err := s.writeFileAtomic(filepath.Join(dir, fn), files[fn], 0o644); err != nil {
			return 0, err
		}
	}
	return int64(len(files[TraceName])), nil
}

// sameContent reports whether the run directory holds exactly the given
// files, byte for byte.
func (s *Store) sameContent(dir string, files map[string][]byte) bool {
	ents, err := s.fsys.ReadDir(dir)
	if err != nil || len(ents) != len(files) {
		return false
	}
	for _, e := range ents {
		want, ok := files[e.Name()]
		if !ok {
			return false
		}
		got, err := s.fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil || !bytes.Equal(got, want) {
			return false
		}
	}
	return true
}
