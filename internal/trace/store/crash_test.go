package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// TestInterruptedRecordStaysListable is the issue's crash-safety
// criterion: a recording cut short (here by a pre-cancelled context,
// which aborts the trace writer exactly where a kill would) must leave a
// run directory that List names, Load reads, and Replay partially
// recovers.
func TestInterruptedRecordStaysListable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.RunningExample(workloads.Random, 48, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.RecordContext(ctx, "crashed", src, "interrupted", algoprof.Config{Seed: 1}, trace.WriterOptions{})
	if err == nil {
		t.Fatal("cancelled Record succeeded")
	}
	var pe *algoprof.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("Record error = %v (%T), want *algoprof.PartialError", err, err)
	}

	names, err := s.List()
	if err != nil || !slices.Contains(names, "crashed") {
		t.Fatalf("List = %v, %v; interrupted run not listed", names, err)
	}
	run, err := s.Load("crashed")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !run.Manifest.Degraded || !slices.Contains(run.Manifest.DegradedReasons, interruptedReason) {
		t.Errorf("manifest reasons = %v, want %s", run.Manifest.DegradedReasons, interruptedReason)
	}

	rep, err := s.Replay("crashed")
	if err != nil {
		t.Fatalf("Replay of interrupted run: %v", err)
	}
	if !rep.Profile.Degraded || !slices.Contains(rep.Profile.DegradedReasons, "truncated-trace") {
		t.Errorf("replayed profile reasons = %v, want truncated-trace", rep.Profile.DegradedReasons)
	}
}

// TestProvisionalManifestBeforeRun simulates the kill -9 window directly:
// a run directory holding only the pre-run artifacts — source, the
// provisional manifest, and a header-only trace — must still list and
// load as a degraded run.
func TestProvisionalManifestBeforeRun(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "killed")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "class Main { public static void main() { check(true); } }"
	if err := s.writeFileAtomic(filepath.Join(dir, programFile), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m := Manifest{
		FormatVersion:   trace.Version,
		Degraded:        true,
		DegradedReasons: []string{interruptedReason},
	}
	if err := s.writeManifest(dir, &m); err != nil {
		t.Fatal(err)
	}

	names, err := s.List()
	if err != nil || !slices.Contains(names, "killed") {
		t.Fatalf("List = %v, %v; provisional run not listed", names, err)
	}
	run, err := s.Load("killed")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !run.Manifest.Degraded {
		t.Error("provisional manifest not degraded")
	}
}

// TestFailedRecordDoesNotList: a genuine failure (here a compile error)
// must not leave a listable run behind.
func TestFailedRecordDoesNotList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Record("broken", "class Main { syntax error", "", algoprof.Config{}, trace.WriterOptions{})
	if err == nil {
		t.Fatal("Record of a broken program succeeded")
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(names, "broken") {
		t.Errorf("failed run listed: %v", names)
	}
}

// TestAtomicWriteReplaces: writeFileAtomic must replace existing content
// in one step and leave no temp files behind.
func TestAtomicWriteReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := writeFileAtomicFS(faultinject.OS(), path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomicFS(faultinject.OS(), path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("read %q, %v; want new", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}
