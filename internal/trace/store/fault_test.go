package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// fastRetry is the default retry shape with sleeps elided.
var fastRetry = faultinject.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}

func smallSrc() string { return workloads.RunningExample(workloads.Random, 24, 8, 1) }

// TestListSkipsGarbage: damaged or foreign entries in the store directory
// are logged and skipped, never hiding the intact runs or failing the
// listing.
func TestListSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record("good", smallSrc(), "w", algoprof.Config{}, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	// A directory whose manifest is garbage, a directory with no manifest
	// at all, and a stray file.
	if err := os.MkdirAll(filepath.Join(dir, "garbage"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage", manifestFile), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	s.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "good" {
		t.Fatalf("List = %v, want [good]", names)
	}
	all := strings.Join(logged, "\n")
	if !strings.Contains(all, "garbage") || !strings.Contains(all, "empty") {
		t.Errorf("skipped entries not logged; log:\n%s", all)
	}
}

// TestRecordResourceFaultTyped: a resource fault on the atomic-commit
// rename fails the recording with a typed Resource error and leaves no
// listable run behind.
func TestRecordResourceFaultTyped(t *testing.T) {
	plan := faultinject.NewPlan(4)
	plan.Arm(faultinject.PointRename, faultinject.PointConfig{
		Prob: 1, MaxFires: 1, Class: faultinject.Resource, Errno: syscall.EMFILE,
	})
	s, err := OpenFS(t.TempDir(), plan.FS(faultinject.OS()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetry(fastRetry)
	s.SetLogf(nil)
	_, err = s.Record("run", smallSrc(), "w", algoprof.Config{}, trace.WriterOptions{})
	if err == nil {
		t.Fatal("record under rename fault succeeded")
	}
	if got := faultinject.ClassOf(err); got != faultinject.Resource {
		t.Errorf("ClassOf = %v, want resource", got)
	}
	if !errors.Is(err, syscall.EMFILE) {
		t.Errorf("err = %v, want EMFILE in the chain", err)
	}
	names, err := s.List()
	if err != nil || len(names) != 0 {
		t.Errorf("List = %v, %v; want empty", names, err)
	}
}

// TestRecordTraceWriteFaultTyped: an ENOSPC on the streaming trace file
// surfaces as a typed Resource error through the trace writer's I/O
// wrapping, and the provisional run directory is cleaned up.
func TestRecordTraceWriteFaultTyped(t *testing.T) {
	plan := faultinject.NewPlan(4)
	plan.Arm(faultinject.PointWrite, faultinject.PointConfig{
		Prob: 1, MaxFires: 1, Class: faultinject.Resource,
		Errno: syscall.ENOSPC, PathSuffix: traceFile,
	})
	s, err := OpenFS(t.TempDir(), plan.FS(faultinject.OS()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetry(fastRetry)
	s.SetLogf(nil)
	_, err = s.Record("run", smallSrc(), "w", algoprof.Config{}, trace.WriterOptions{})
	if err == nil {
		t.Fatal("record under trace-write fault succeeded")
	}
	if got := faultinject.ClassOf(err); got != faultinject.Resource {
		t.Errorf("ClassOf = %v, want resource", got)
	}
	var ioe *trace.IOError
	if !errors.As(err, &ioe) || ioe.Op != "write" {
		t.Errorf("err = %v, want a trace.IOError from the write path", err)
	}
}

// TestRecordTransientAbsorbed: a bounded burst of transient faults is
// retried away — the recording succeeds, the faults demonstrably fired,
// and the stored run replays to the recorded profile.
func TestRecordTransientAbsorbed(t *testing.T) {
	plan := faultinject.NewPlan(6)
	sync := plan.Arm(faultinject.PointSync, faultinject.PointConfig{
		Prob: 1, MaxFires: 2, Class: faultinject.Transient, Errno: syscall.EINTR,
	})
	dir := t.TempDir()
	s, err := OpenFS(dir, plan.FS(faultinject.OS()))
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetry(fastRetry)
	s.SetLogf(nil)
	rec, err := s.Record("run", smallSrc(), "w", algoprof.Config{}, trace.WriterOptions{})
	if err != nil {
		t.Fatalf("record under transient faults: %v", err)
	}
	if sync.Fires() == 0 {
		t.Fatal("transient fault point never fired; the test exercised nothing")
	}
	clean, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := clean.Replay("run")
	if err != nil {
		t.Fatalf("replay after absorbed faults: %v", err)
	}
	wj, _ := rec.Profile.JSON()
	gj, _ := replayed.Profile.JSON()
	if string(wj) != string(gj) {
		t.Error("replayed profile differs from the recorded one")
	}
}

// TestReplayReadFaultTyped: read faults during replay surface typed
// instead of turning into corruption reports.
func TestReplayReadFaultTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record("run", smallSrc(), "w", algoprof.Config{}, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(8)
	plan.Arm(faultinject.PointReadFile, faultinject.PointConfig{
		Prob: 1, Class: faultinject.Resource, Errno: syscall.ENFILE, PathSuffix: traceFile,
	})
	faulted, err := OpenFS(dir, plan.FS(faultinject.OS()))
	if err != nil {
		t.Fatal(err)
	}
	faulted.SetRetry(fastRetry)
	faulted.SetLogf(nil)
	if _, err := faulted.Replay("run"); faultinject.ClassOf(err) != faultinject.Resource {
		t.Errorf("replay err = %v, want typed resource fault", err)
	}
}
