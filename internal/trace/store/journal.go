package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"algoprof/internal/faultinject"
)

// JournalName is the write-ahead job journal the profiling daemon keeps
// beside its run directories. It is a plain file, so the run listing
// (which only considers directories) never mistakes it for a run.
const JournalName = "journal.ndjson"

// JournalOp tags one journal entry.
type JournalOp string

// Journal operations. An admitted job appends an enqueue entry before it
// is acknowledged; landing in a terminal status appends a terminal entry.
// Startup compaction folds a previous epoch's terminal entries into one
// charge summary per tenant, so aggregate quota accounting survives
// restarts without the journal growing with daemon lifetime.
const (
	JournalEnqueue  JournalOp = "enqueue"
	JournalTerminal JournalOp = "terminal"
	JournalCharge   JournalOp = "charge"
)

// JournalEntry is one NDJSON line of the write-ahead job journal. The
// store treats the daemon-level job spec as opaque bytes; only the fields
// recovery needs are first-class.
type JournalEntry struct {
	Op JournalOp `json:"op"`
	// ID is the job id (enqueue, terminal).
	ID     string `json:"id,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Key is the deterministic job key — SHA-256 over tenant, workload,
	// program, and configuration — used to deduplicate re-dispatched work.
	Key      string `json:"key,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Program and Spec reconstruct the job on recovery: the MJ source and
	// the daemon's JSON job configuration, opaque to the store.
	Program string          `json:"program,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Persist bool            `json:"persist,omitempty"`
	// Terminal outcome: the status plus what was charged against the
	// tenant's budgets — recovery re-applies charges exactly once.
	Status     string `json:"status,omitempty"`
	Error      string `json:"error,omitempty"`
	ErrorKind  string `json:"error_kind,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	Events     uint64 `json:"events,omitempty"`
	TraceBytes int64  `json:"trace_bytes,omitempty"`
	// Jobs counts the terminal entries folded into a charge summary.
	Jobs int64 `json:"jobs,omitempty"`
}

// Journal is a crash-safe append-only job journal: every entry is one
// JSON line followed by an fsync, so `kill -9` at any instant loses at
// most the entry being written — and a torn tail line is dropped (never
// misparsed) on the next open. Compaction rewrites the file through the
// store's atomic temp+rename path.
type Journal struct {
	path  string
	fsys  faultinject.FS
	retry faultinject.RetryPolicy
	logf  func(format string, args ...any)

	mu sync.Mutex
	f  faultinject.File
}

// OpenJournal opens (creating if absent) the journal at path and returns
// the entries already on disk, in order. Unparseable lines — a torn tail
// after a crash, a damaged middle line — are counted, logged, and
// skipped: one bad line never hides the rest of the log.
func OpenJournal(path string) (*Journal, []JournalEntry, error) {
	return OpenJournalFS(path, faultinject.OS(), faultinject.DefaultRetry, nil)
}

// OpenJournalFS is OpenJournal with an explicit filesystem and retry
// policy — the fault-injection seam.
func OpenJournalFS(path string, fsys faultinject.FS, retry faultinject.RetryPolicy, logf func(string, ...any)) (*Journal, []JournalEntry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	j := &Journal{path: path, fsys: fsys, retry: retry, logf: logf}
	entries := j.read()
	var f faultinject.File
	err := retry.Do(func() (e error) {
		f, e = fsys.OpenAppend(path)
		return e
	})
	if err != nil {
		return nil, nil, fmt.Errorf("store: open journal: %w", err)
	}
	j.f = f
	return j, entries, nil
}

// read parses whatever is on disk, skipping damaged lines.
func (j *Journal) read() []JournalEntry {
	var data []byte
	err := j.retry.Do(func() (e error) {
		data, e = j.fsys.ReadFile(j.path)
		return e
	})
	if err != nil {
		// Absent journal = empty journal (first boot).
		return nil
	}
	var entries []JournalEntry
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			j.logf("store: journal %s: skipping damaged line %d: %v", j.path, i+1, err)
			continue
		}
		entries = append(entries, e)
	}
	return entries
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably appends one entry: a single write of the full line, then
// fsync, both under the transient-retry policy. When Append returns nil
// the entry survives kill -9.
func (j *Journal) Append(e JournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: journal entry: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	return j.retry.Do(func() error {
		if _, err := j.f.Write(data); err != nil {
			return err
		}
		return j.f.Sync()
	})
}

// Compact atomically replaces the journal's contents with entries (temp
// file + rename, like every other store write) and reopens the append
// handle. The daemon compacts at startup, folding the previous epoch's
// terminal history into charge summaries.
func (j *Journal) Compact(entries []JournalEntry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("store: journal entry: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := j.retry.Do(func() error { return writeFileAtomicFS(j.fsys, j.path, buf.Bytes(), 0o644) }); err != nil {
		return err
	}
	var f faultinject.File
	err := j.retry.Do(func() (e error) {
		f, e = j.fsys.OpenAppend(j.path)
		return e
	})
	if err != nil {
		return fmt.Errorf("store: reopen journal after compact: %w", err)
	}
	j.f = f
	return nil
}

// Close syncs and closes the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// JournalState is the reduction of a journal: what a restarting daemon
// must act on.
type JournalState struct {
	// Pending are enqueued jobs with no terminal entry — work the crashed
	// daemon admitted but never finished. Recovery re-executes them; the
	// deterministic record→replay contract makes re-execution safe.
	Pending []JournalEntry
	// Terminal are this journal's terminal entries, first-wins per job id,
	// in append order.
	Terminal []JournalEntry
	// Charges are prior compaction summaries (one per tenant per epoch).
	Charges []JournalEntry
}

// ReduceJournal folds raw journal entries into recovery state. A
// duplicate terminal entry for one job id (possible only if a crash split
// an append across epochs) keeps the first — terminal is exactly-once.
func ReduceJournal(entries []JournalEntry) JournalState {
	var st JournalState
	terminal := map[string]bool{}
	enqueued := map[string]int{} // id -> index into st.Pending
	for _, e := range entries {
		switch e.Op {
		case JournalEnqueue:
			if _, dup := enqueued[e.ID]; dup || terminal[e.ID] {
				continue
			}
			enqueued[e.ID] = len(st.Pending)
			st.Pending = append(st.Pending, e)
		case JournalTerminal:
			if terminal[e.ID] {
				continue
			}
			terminal[e.ID] = true
			st.Terminal = append(st.Terminal, e)
			if i, ok := enqueued[e.ID]; ok {
				// Mark the pending slot consumed; compacted below.
				st.Pending[i].Op = ""
			}
		case JournalCharge:
			st.Charges = append(st.Charges, e)
		}
	}
	live := st.Pending[:0]
	for _, e := range st.Pending {
		if e.Op == JournalEnqueue {
			live = append(live, e)
		}
	}
	st.Pending = live
	return st
}
