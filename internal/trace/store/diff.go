package store

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"algoprof"
	"algoprof/internal/fit"
)

// DiffKind classifies one cost-function comparison between two runs.
type DiffKind int

// Diff kinds, ordered least to most severe.
const (
	// Unchanged: same model class, coefficient within tolerance.
	Unchanged DiffKind = iota
	// ConstantFactor: same model class, coefficient drifted beyond
	// tolerance — a slowdown or speedup, not an algorithmic change.
	ConstantFactor
	// ComplexityImprovement: the fitted model class got simpler
	// (e.g. n² → n·log n).
	ComplexityImprovement
	// ComplexityRegression: the fitted model class got more complex
	// (e.g. n·log n → n²) — the paper's headline detectable event.
	ComplexityRegression
	// Added / Removed: the algorithm or input series exists in only one
	// run.
	Added
	Removed
)

func (k DiffKind) String() string {
	switch k {
	case Unchanged:
		return "unchanged"
	case ConstantFactor:
		return "constant-factor"
	case ComplexityImprovement:
		return "complexity-improvement"
	case ComplexityRegression:
		return "COMPLEXITY REGRESSION"
	case Added:
		return "added"
	case Removed:
		return "removed"
	}
	return "?"
}

// Entry is one (algorithm, input) comparison.
type Entry struct {
	Algorithm  string
	InputLabel string
	Kind       DiffKind
	OldModel   string
	NewModel   string
	OldCoeff   float64
	NewCoeff   float64
	// Ratio is NewCoeff/OldCoeff for same-model entries (0 otherwise).
	Ratio float64
}

// Diff compares two runs' fitted cost functions.
type Diff struct {
	Entries []Entry
}

// coeffTolerance is the relative coefficient drift under which two
// same-model fits count as unchanged. Fitted coefficients jitter a few
// percent run to run from sampling noise; a real constant-factor change
// (an extra pass, say) moves them far more.
const coeffTolerance = 0.15

// DiffRuns compares the fitted cost functions of two manifests, old to
// new, matching series by (algorithm name, input label).
func DiffRuns(old, new *Manifest) *Diff {
	type key struct{ alg, input string }
	index := func(m *Manifest) map[key]algoprof.CostFunction {
		out := map[key]algoprof.CostFunction{}
		for _, a := range m.Algorithms {
			for _, cf := range a.CostFunctions {
				out[key{a.Name, cf.InputLabel}] = cf
			}
		}
		return out
	}
	oldCF, newCF := index(old), index(new)
	keys := make([]key, 0, len(oldCF)+len(newCF))
	for k := range oldCF {
		keys = append(keys, k)
	}
	for k := range newCF {
		if _, ok := oldCF[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].alg != keys[j].alg {
			return keys[i].alg < keys[j].alg
		}
		return keys[i].input < keys[j].input
	})

	d := &Diff{}
	for _, k := range keys {
		o, hasOld := oldCF[k]
		n, hasNew := newCF[k]
		e := Entry{Algorithm: k.alg, InputLabel: k.input}
		switch {
		case !hasOld:
			e.Kind = Added
			e.NewModel, e.NewCoeff = n.Model, effectiveCoeff(n)
		case !hasNew:
			e.Kind = Removed
			e.OldModel, e.OldCoeff = o.Model, effectiveCoeff(o)
		default:
			e.OldModel, e.NewModel = o.Model, n.Model
			e.OldCoeff, e.NewCoeff = effectiveCoeff(o), effectiveCoeff(n)
			e.Kind = classify(o, n, &e)
		}
		d.Entries = append(d.Entries, e)
	}
	return d
}

// effectiveCoeff is the growth coefficient to compare: for constant fits
// the level itself (coeff + intercept), otherwise the model coefficient.
func effectiveCoeff(cf algoprof.CostFunction) float64 {
	if m, ok := fit.ParseModel(cf.Model); ok && m == fit.Constant {
		return cf.Coeff + cf.Intercept
	}
	return cf.Coeff
}

func classify(o, n algoprof.CostFunction, e *Entry) DiffKind {
	om, okO := fit.ParseModel(o.Model)
	nm, okN := fit.ParseModel(n.Model)
	if okO && okN && om != nm {
		if nm > om {
			return ComplexityRegression
		}
		return ComplexityImprovement
	}
	if o.Model != n.Model {
		// Unknown model names that differ: treat as a regression — the
		// shape changed and we cannot rank it.
		return ComplexityRegression
	}
	if e.OldCoeff != 0 {
		e.Ratio = e.NewCoeff / e.OldCoeff
	}
	if e.Ratio > 0 && math.Abs(e.Ratio-1) <= coeffTolerance {
		return Unchanged
	}
	if e.OldCoeff == e.NewCoeff {
		return Unchanged
	}
	return ConstantFactor
}

// HasComplexityRegression reports whether any entry's model class got more
// complex.
func (d *Diff) HasComplexityRegression() bool {
	for _, e := range d.Entries {
		if e.Kind == ComplexityRegression {
			return true
		}
	}
	return false
}

// Render formats the diff as an aligned text report, most severe entries
// first.
func (d *Diff) Render() string {
	entries := append([]Entry(nil), d.Entries...)
	sort.SliceStable(entries, func(i, j int) bool { return severity(entries[i].Kind) > severity(entries[j].Kind) })
	var sb strings.Builder
	for _, e := range entries {
		name := e.Algorithm
		if e.InputLabel != "" {
			name += " [" + e.InputLabel + "]"
		}
		switch e.Kind {
		case Added:
			fmt.Fprintf(&sb, "%-22s %-52s -> %s (%.3g)\n", e.Kind, name, e.NewModel, e.NewCoeff)
		case Removed:
			fmt.Fprintf(&sb, "%-22s %-52s %s (%.3g) ->\n", e.Kind, name, e.OldModel, e.OldCoeff)
		case Unchanged:
			fmt.Fprintf(&sb, "%-22s %-52s %s (%.3g)\n", e.Kind, name, e.NewModel, e.NewCoeff)
		case ConstantFactor:
			fmt.Fprintf(&sb, "%-22s %-52s %s: %.3g -> %.3g (x%.2f)\n",
				e.Kind, name, e.NewModel, e.OldCoeff, e.NewCoeff, e.Ratio)
		default:
			fmt.Fprintf(&sb, "%-22s %-52s %s -> %s\n", e.Kind, name, e.OldModel, e.NewModel)
		}
	}
	return sb.String()
}

func severity(k DiffKind) int {
	switch k {
	case ComplexityRegression:
		return 5
	case ComplexityImprovement:
		return 4
	case ConstantFactor:
		return 3
	case Added, Removed:
		return 2
	}
	return 0
}
