package store

import (
	"bytes"
	"context"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// fleetStore records three runs: two identical (same program, same seed —
// traces are deterministic, so same bytes) and one different.
func fleetStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	src := workloads.RunningExample(workloads.Random, 24, 8, 2)
	other := workloads.RunningExample(workloads.Sorted, 24, 8, 2)
	for name, program := range map[string]string{"base": src, "twin": src, "other": other} {
		if _, err := s.Record(name, program, "fleet", algoprof.Config{Seed: 1}, trace.WriterOptions{Compress: true}); err != nil {
			t.Fatalf("Record(%s): %v", name, err)
		}
	}
	return s
}

func TestFleetDiff(t *testing.T) {
	s := fleetStore(t)
	rep, err := s.FleetDiff("base", nil)
	if err != nil {
		t.Fatalf("FleetDiff: %v", err)
	}
	if len(rep.Entries) != 2 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Identical != 1 || rep.Changed != 1 {
		t.Fatalf("partition: identical=%d changed=%d", rep.Identical, rep.Changed)
	}
	for _, e := range rep.Entries {
		switch e.Run {
		case "twin":
			if !e.Identical || !e.SkippedByRoot {
				t.Errorf("twin: want identity proven from manifest roots, got %+v", e)
			}
		case "other":
			if e.Identical || e.Diff == nil {
				t.Errorf("other: want a changed diff, got %+v", e)
			}
		default:
			t.Errorf("unexpected entry %q", e.Run)
		}
	}
	if rep.BaselineRoot == "" {
		t.Errorf("baseline root missing from report")
	}
}

// TestFleetDiffDamagedRun: a run whose trace is unreadable must fail its
// own entry without hiding the rest of the fleet.
func TestFleetDiffDamagedRun(t *testing.T) {
	s := fleetStore(t)
	run, err := s.Load("other")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := s.writeFileAtomic(run.Dir+"/"+TraceName, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("damage: %v", err)
	}
	// The stale manifest root would skip the comparison; clear it so the
	// differ actually opens the damaged file.
	run.Manifest.TraceMerkleRoot = ""
	if err := s.writeManifest(run.Dir, &run.Manifest); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	rep, err := s.FleetDiff("base", nil)
	if err != nil {
		t.Fatalf("FleetDiff: %v", err)
	}
	if rep.Failed != 1 || rep.Identical != 1 {
		t.Fatalf("report after damage: %+v", rep)
	}
}

// TestStoreReplayParallelIdentical: the store's parallel replay must yield
// the same profile JSON as its sequential replay.
func TestStoreReplayParallelIdentical(t *testing.T) {
	s := fleetStore(t)
	seq, err := s.Replay("base")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	par, err := s.ReplayParallel(context.Background(), "base", 4)
	if err != nil {
		t.Fatalf("ReplayParallel: %v", err)
	}
	sj, err := seq.Profile.JSON()
	if err != nil {
		t.Fatalf("seq JSON: %v", err)
	}
	pj, err := par.Profile.JSON()
	if err != nil {
		t.Fatalf("par JSON: %v", err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel store replay differs from sequential")
	}
}

// TestManifestStampsTraceIndex: the manifest's format version and Merkle
// root must come from the stored trace file itself.
func TestManifestStampsTraceIndex(t *testing.T) {
	s := fleetStore(t)
	run, err := s.Load("base")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ix, err := trace.OpenIndex(run.Dir + "/" + TraceName)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if run.Manifest.FormatVersion != int(ix.Version) {
		t.Errorf("manifest format_version %d, trace file says %d", run.Manifest.FormatVersion, ix.Version)
	}
	if run.Manifest.TraceMerkleRoot != ix.Root.String() {
		t.Errorf("manifest merkle root %q, trace file says %q", run.Manifest.TraceMerkleRoot, ix.Root)
	}
}
