package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// TestTenantScopedListing covers the tenant field end to end: runs
// recorded for a tenant list under that tenant (and under no filter),
// other tenants don't see them, and legacy manifests — written before the
// field existed — keep behaving as tenant "".
func TestTenantScopedListing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.RunningExample(workloads.Random, 24, 8, 1)
	ctx := t.Context()
	if _, err := s.RecordTenantContext(ctx, "acme-1", src, "running", "acme", algoprof.Config{Seed: 1}, trace.WriterOptions{}); err != nil {
		t.Fatalf("record acme-1: %v", err)
	}
	if _, err := s.RecordTenantContext(ctx, "zeta-1", src, "running", "zeta", algoprof.Config{Seed: 2}, trace.WriterOptions{}); err != nil {
		t.Fatalf("record zeta-1: %v", err)
	}
	// A legacy run: recorded through the old tenantless API.
	if _, err := s.Record("legacy-1", src, "running", algoprof.Config{Seed: 3}, trace.WriterOptions{}); err != nil {
		t.Fatalf("record legacy-1: %v", err)
	}

	// Simulate a manifest written by an older build: strip the tenant key
	// entirely rather than writing "" (the omitempty shape is identical,
	// but this makes the backward-compat claim explicit).
	legacyManifest := filepath.Join(dir, "legacy-1", ManifestName)
	data, err := os.ReadFile(legacyManifest)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["tenant"]; ok {
		t.Fatal("tenantless Record wrote a tenant key; omitempty contract broken")
	}
	delete(raw, "tenant")
	stripped, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacyManifest, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	check := func(tenant string, want ...string) {
		t.Helper()
		got, err := s.ListTenant(tenant)
		if err != nil {
			t.Fatalf("ListTenant(%q): %v", tenant, err)
		}
		if len(got) != len(want) {
			t.Fatalf("ListTenant(%q) = %v, want %v", tenant, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ListTenant(%q) = %v, want %v", tenant, got, want)
			}
		}
	}
	check("", "acme-1", "legacy-1", "zeta-1") // no filter: everything, legacy included
	check("acme", "acme-1")
	check("zeta", "zeta-1")
	check("nobody")

	r, err := s.Load("acme-1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest.Tenant != "acme" {
		t.Fatalf("acme-1 manifest tenant = %q, want acme", r.Manifest.Tenant)
	}
	if r, err = s.Load("legacy-1"); err != nil {
		t.Fatal(err)
	}
	if r.Manifest.Tenant != "" {
		t.Fatalf("legacy manifest tenant = %q, want empty", r.Manifest.Tenant)
	}
	// The legacy run still replays after the manifest rewrite.
	if _, err := s.Replay("legacy-1"); err != nil {
		t.Fatalf("legacy replay: %v", err)
	}
}

// TestFleetDiffTenantScoped: the fleet expansion honours the tenant filter;
// an explicit run list is taken as given.
func TestFleetDiffTenantScoped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := workloads.RunningExample(workloads.Random, 24, 8, 1)
	ctx := t.Context()
	for _, r := range []struct{ name, tenant string }{
		{"base", "acme"}, {"acme-a", "acme"}, {"acme-b", "acme"}, {"zeta-a", "zeta"},
	} {
		if _, err := s.RecordTenantContext(ctx, r.name, src, "running", r.tenant, algoprof.Config{Seed: 1}, trace.WriterOptions{}); err != nil {
			t.Fatalf("record %s: %v", r.name, err)
		}
	}
	rep, err := s.FleetDiffTenant("base", nil, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("acme fleet has %d entries, want 2 (zeta run must be filtered out)", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.Run == "zeta-a" {
			t.Fatal("tenant filter leaked a zeta run into the acme fleet")
		}
	}
	// Unscoped fleet still sees all three.
	rep, err = s.FleetDiff("base", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("unscoped fleet has %d entries, want 3", len(rep.Entries))
	}
}
