package trace

import (
	"crypto/sha256"
	"fmt"
)

// HashSize is the byte width of every Merkle hash (SHA-256).
const HashSize = sha256.Size

// Hash is one Merkle tree node: the SHA-256 of a frame's stored payload
// (leaves) or of two child hashes (interior nodes).
type Hash [HashSize]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// Domain-separation prefixes: a leaf hash can never be confused with an
// interior hash, so an attacker cannot re-root a subtree as a frame.
const (
	leafPrefix byte = 0x00
	nodePrefix byte = 0x01
)

// leafHash hashes one frame's stored payload (post-compression — the bytes
// on disk), so verification never needs to inflate a frame.
func leafHash(payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes into their parent.
func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// buildLevels constructs the full Merkle tree bottom-up: levels[0] is the
// leaves, each higher level pairs the one below, a lone last node promotes
// unchanged, and the final level holds the single root. An empty leaf set
// yields one level holding the zero hash (the root of an empty trace).
func buildLevels(leaves []Hash) [][]Hash {
	if len(leaves) == 0 {
		return [][]Hash{{{}}}
	}
	levels := [][]Hash{leaves}
	for cur := leaves; len(cur) > 1; {
		next := make([]Hash, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, nodeHash(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i])
			}
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// merkleRoot is the root of the tree over leaves (zero hash when empty).
func merkleRoot(leaves []Hash) Hash {
	levels := buildLevels(leaves)
	return levels[len(levels)-1][0]
}

// RangeProof carries the sibling hashes needed to recompute the Merkle root
// from the leaf hashes of frames [Lo, Hi) alone, without any other frame's
// bytes. Siblings are ordered exactly as VerifyRangeProof consumes them:
// per level bottom-up, left-edge sibling first, then right-edge sibling.
type RangeProof struct {
	// NumLeaves is the total leaf count of the tree the proof was built
	// over; the verifier needs it to reproduce the tree shape.
	NumLeaves int
	// Lo and Hi bound the proven frame range, half-open.
	Lo, Hi int
	// Siblings are the edge hashes, in consumption order.
	Siblings []Hash
}

// proveRange collects the sibling hashes for leaves [lo, hi) from a built
// tree. The caller has validated the range.
func proveRange(levels [][]Hash, lo, hi int) *RangeProof {
	p := &RangeProof{NumLeaves: len(levels[0]), Lo: lo, Hi: hi}
	if p.NumLeaves == 0 {
		return p
	}
	count := p.NumLeaves
	for level := 0; count > 1; level++ {
		nodes := levels[level]
		if lo%2 == 1 {
			p.Siblings = append(p.Siblings, nodes[lo-1])
			lo--
		}
		if (hi-1)%2 == 0 && hi < count {
			p.Siblings = append(p.Siblings, nodes[hi])
			hi++
		}
		lo, hi = lo/2, (hi+1)/2
		count = (count + 1) / 2
	}
	return p
}

// VerifyRangeProof checks that leaves are the true leaf hashes of frames
// [lo, hi) in the tree with the given root: it recombines them with the
// proof's sibling hashes up to a root and compares. Any mismatch — wrong
// leaf data, wrong range, tampered sibling — fails with a typed
// *CorruptError.
func VerifyRangeProof(root Hash, lo, hi int, leaves []Hash, p *RangeProof) error {
	if p == nil {
		return corruptf("merkle proof missing")
	}
	if lo != p.Lo || hi != p.Hi {
		return corruptf("merkle proof covers [%d,%d), want [%d,%d)", p.Lo, p.Hi, lo, hi)
	}
	count := p.NumLeaves
	if lo < 0 || hi > count || lo >= hi {
		return corruptf("merkle range [%d,%d) out of bounds (0..%d)", lo, hi, count)
	}
	if len(leaves) != hi-lo {
		return corruptf("merkle proof given %d leaves for range of %d", len(leaves), hi-lo)
	}
	window := append([]Hash(nil), leaves...)
	sib := p.Siblings
	take := func() (Hash, error) {
		if len(sib) == 0 {
			return Hash{}, corruptf("merkle proof too short")
		}
		h := sib[0]
		sib = sib[1:]
		return h, nil
	}
	for count > 1 {
		if lo%2 == 1 {
			h, err := take()
			if err != nil {
				return err
			}
			window = append([]Hash{h}, window...)
			lo--
		}
		if (hi-1)%2 == 0 && hi < count {
			h, err := take()
			if err != nil {
				return err
			}
			window = append(window, h)
			hi++
		}
		// The window now starts even and ends even or at the level's last
		// node, so it pairs cleanly; a lone trailing node (only at the
		// level end) promotes.
		next := window[:0]
		for i := 0; i < len(window); i += 2 {
			if i+1 < len(window) {
				next = append(next, nodeHash(window[i], window[i+1]))
			} else {
				next = append(next, window[i])
			}
		}
		window = next
		lo, hi = lo/2, (hi+1)/2
		count = (count + 1) / 2
	}
	if len(sib) != 0 {
		return corruptf("merkle proof has %d unused siblings", len(sib))
	}
	if len(window) != 1 || window[0] != root {
		return corruptf("merkle root mismatch: proof yields %s, footer says %s", window[0], root)
	}
	return nil
}
