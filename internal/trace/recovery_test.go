package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"algoprof/internal/events/pipeline"
)

// TestWriterAbortRecovers: Abort flushes buffered records but writes no
// index or trailer — the crash shape. The reader must recover every
// record written before the abort.
func TestWriterAbortRecovers(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	tw := NewWriter(&buf, WriterOptions{FrameSize: 4})
	for i := range recs {
		tw.Record(&recs[i])
	}
	if err := tw.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("aborted trace does not open: %v", err)
	}
	if !r.Stats().Truncated {
		t.Error("aborted trace not flagged truncated")
	}
	var got []pipeline.Record
	if err := r.Replay(func(rec *pipeline.Record) { got = append(got, *rec) }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want all %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].Clock != recs[i].Clock || got[i].KS != recs[i].KS {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestWriterMaxBytes: the size cap stops capture at a frame boundary but
// Close still writes the index and trailer, so the capped trace is a
// complete, strictly-readable file over the captured prefix.
func TestWriterMaxBytes(t *testing.T) {
	var full bytes.Buffer
	tw := NewWriter(&full, WriterOptions{FrameSize: 2})
	var rec pipeline.Record
	for i := 0; i < 200; i++ {
		rec = pipeline.Record{Op: pipeline.OpMethodEntry, Clock: uint64(i + 1), ID: int32(i)}
		tw.Record(&rec)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewReader(full.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Cap at a quarter of the data extent (not the file size: the v2 index
	// carries one hash per frame, which at FrameSize 2 dwarfs the data).
	var capped bytes.Buffer
	tw = NewWriter(&capped, WriterOptions{FrameSize: 2, MaxBytes: fr.dataEnd / 4})
	for i := 0; i < 200; i++ {
		rec = pipeline.Record{Op: pipeline.OpMethodEntry, Clock: uint64(i + 1), ID: int32(i)}
		tw.Record(&rec)
	}
	if !tw.Truncated() {
		t.Fatal("writer under cap not marked truncated")
	}
	if tw.DroppedRecords() == 0 {
		t.Error("no dropped records counted")
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(capped.Bytes())
	if err != nil {
		t.Fatalf("capped trace does not open: %v", err)
	}
	if r.Stats().Truncated {
		t.Error("capped trace needed recovery; want a complete file")
	}
	var n uint64
	last := uint64(0)
	if err := r.Replay(func(rec *pipeline.Record) { n++; last = rec.Clock }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n == 0 || n >= 200 {
		t.Errorf("capped trace replayed %d records, want a strict nonempty prefix", n)
	}
	if n+tw.DroppedRecords() != 200 {
		t.Errorf("kept %d + dropped %d != 200 records", n, tw.DroppedRecords())
	}
	if last != n {
		t.Errorf("prefix is not contiguous: last clock %d after %d records", last, n)
	}
}

// TestFuzzCorpusRecovery pins the fuzz corpus as regression fixtures for
// the normal test run: every corpus input must open-or-refuse without a
// panic, and any input that opens must replay without one.
func TestFuzzCorpusRecovery(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplay")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	tested := 0
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		input, ok := decodeCorpus(string(data))
		if !ok {
			t.Errorf("corpus file %s does not parse", e.Name())
			continue
		}
		tested++
		r, err := NewReader(input)
		if err != nil {
			continue
		}
		var n int
		_ = r.Replay(func(*pipeline.Record) { n++ })
		if st := r.Stats(); st.Truncated && st.Records != 0 && n == 0 {
			// Recovery promised records but replay produced none — the
			// recovered index disagrees with the frames.
			t.Errorf("corpus %s: recovered stats claim %d records, replayed 0", e.Name(), st.Records)
		}
	}
	if tested == 0 {
		t.Skip("fuzz corpus directory empty")
	}
}

// decodeCorpus parses the go fuzz corpus file format: a version line
// followed by one []byte(...) Go literal per fuzz argument.
func decodeCorpus(s string) ([]byte, bool) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, false
	}
	lit := strings.TrimSpace(lines[1])
	lit = strings.TrimPrefix(lit, "[]byte(")
	lit = strings.TrimSuffix(lit, ")")
	unq, err := strconv.Unquote(lit)
	if err != nil {
		return nil, false
	}
	return []byte(unq), true
}
