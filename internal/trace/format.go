// Package trace persists the pipeline's event stream to disk and replays
// it offline. A Writer subscribes to an events/pipeline Transport as a raw
// record tap and streams every record — including the heap-journal records
// regular listeners never see — into self-delimiting, CRC-protected,
// optionally compressed frames. A Reader decodes a trace and dispatches the
// records back through a Transport, reconstructing the heap as a shadow of
// interned entities, so the algorithmic profiler, CCT, and bbprof backends
// run on a recorded stream and produce byte-identical reports to the live
// run.
//
// The on-disk layout is specified in docs/TRACE.md. In short:
//
//	header  = magic "ALGTRACE" + u32 version + u32 flags
//	frames  = uvarint payloadLen + u32 CRC32(payload) + payload
//	payload = tagged events (tag 0xF0 interns the next string id)
//	index   = one uncompressed frame of frame offsets + totals
//	trailer = u64 index offset + magic "ALGTRIDX"
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"algoprof/internal/faultinject"
)

// File layout constants.
const (
	// Magic opens every trace file.
	Magic = "ALGTRACE"
	// TrailerMagic closes every complete trace file.
	TrailerMagic = "ALGTRIDX"
	// Version is the current format version, the one writers emit. Readers
	// accept VersionV1 traces as well: they replay sequentially and diff via
	// the slow path, but carry no checkpoints or Merkle footer.
	Version = 2
	// VersionV1 is the previous format: no checkpoint frames, no Merkle
	// section in the index.
	VersionV1 = 1

	headerSize  = 8 + 4 + 4
	trailerSize = 8 + 8
)

// Header flag bits.
const (
	// FlagCompress marks data-frame payloads as DEFLATE-compressed. The
	// index frame is always stored raw.
	FlagCompress uint32 = 1 << 0
)

// tagStrDef interns a string: the bytes that follow define the next
// sequential string id of the current frame. Event tags are the raw
// pipeline.Op values, which stay well below 0xF0.
const tagStrDef = 0xF0

// tagCheckpoint opens a checkpoint frame (format v2): a serialized snapshot
// of the full shadow heap at a frame boundary, written every
// WriterOptions.CheckpointEvery data frames. Checkpoint frames carry no
// events — sequential replay skips them — and exist so a range replay can
// seed a private shadow heap at the nearest checkpoint at-or-before its
// first frame instead of decoding the whole prefix.
const tagCheckpoint = 0xF1

// Decoder bounds. Real traces stay far under these; they exist so a
// corrupted or adversarial file fails with an error instead of exhausting
// memory.
const (
	// maxFramePayload bounds one frame's decoded payload size.
	maxFramePayload = 1 << 24
	// maxCapacity bounds a journaled entity capacity.
	maxCapacity = 1 << 20
)

// ErrCorrupt wraps every decoding failure, so callers can distinguish a
// damaged trace from an I/O error.
var ErrCorrupt = errors.New("trace: corrupt")

// CorruptError is a decoding failure. It matches errors.Is(err, ErrCorrupt),
// classifies as faultinject.Corruption, and carries the file offset of the
// damaged frame when the decoder knows it (-1 otherwise) so audits can
// report where a trace went bad.
type CorruptError struct {
	// Off is the file offset of the frame found damaged, -1 if unknown.
	Off int64
	// Msg describes the damage.
	Msg string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Off >= 0 {
		return fmt.Sprintf("trace: corrupt: %s (frame offset %d)", e.Msg, e.Off)
	}
	return "trace: corrupt: " + e.Msg
}

// Is keeps errors.Is(err, ErrCorrupt) working for pre-existing callers.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// FaultClass implements faultinject.Classifier.
func (e *CorruptError) FaultClass() faultinject.FaultClass { return faultinject.Corruption }

func corruptf(format string, args ...any) error {
	return &CorruptError{Off: -1, Msg: fmt.Sprintf(format, args...)}
}

// corruptAt is corruptf with the file offset of the damaged frame.
func corruptAt(off int64, format string, args ...any) error {
	return &CorruptError{Off: off, Msg: fmt.Sprintf(format, args...)}
}

// IOError wraps a raw I/O failure from the trace writer or reader with the
// operation and the file offset at which it struck, so callers can
// errors.Is/As through it against the fault taxonomy (the underlying error
// keeps its own class: an injected ENOSPC stays Resource, a short write
// stays Transient).
type IOError struct {
	// Op is the failed operation ("write", "read", "sync", ...).
	Op string
	// Off is the file offset of the failed operation.
	Off int64
	// Err is the underlying error.
	Err error
}

// Error implements error.
func (e *IOError) Error() string {
	return fmt.Sprintf("trace: %s at offset %d: %s", e.Op, e.Off, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *IOError) Unwrap() error { return e.Err }

// ---------------------------------------------------------------------------
// Varint helpers over byte slices. All reads are bounds-checked and return
// an error instead of panicking, so the decoder survives arbitrary input
// (the fuzz target's contract).

func putUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func putVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func readUvarint(b []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return 0, pos, corruptf("bad uvarint at %d", pos)
	}
	return v, pos + n, nil
}

func readVarint(b []byte, pos int) (int64, int, error) {
	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return 0, pos, corruptf("bad varint at %d", pos)
	}
	return v, pos + n, nil
}

func readByte(b []byte, pos int) (byte, int, error) {
	if pos >= len(b) {
		return 0, pos, corruptf("unexpected end at %d", pos)
	}
	return b[pos], pos + 1, nil
}

// readUint reads a uvarint and checks it fits a non-negative int below
// limit.
func readUint(b []byte, pos int, limit uint64, what string) (int, int, error) {
	v, pos, err := readUvarint(b, pos)
	if err != nil {
		return 0, pos, err
	}
	if v >= limit {
		return 0, pos, corruptf("%s %d out of range", what, v)
	}
	return int(v), pos, nil
}
