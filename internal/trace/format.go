// Package trace persists the pipeline's event stream to disk and replays
// it offline. A Writer subscribes to an events/pipeline Transport as a raw
// record tap and streams every record — including the heap-journal records
// regular listeners never see — into self-delimiting, CRC-protected,
// optionally compressed frames. A Reader decodes a trace and dispatches the
// records back through a Transport, reconstructing the heap as a shadow of
// interned entities, so the algorithmic profiler, CCT, and bbprof backends
// run on a recorded stream and produce byte-identical reports to the live
// run.
//
// The on-disk layout is specified in docs/TRACE.md. In short:
//
//	header  = magic "ALGTRACE" + u32 version + u32 flags
//	frames  = uvarint payloadLen + u32 CRC32(payload) + payload
//	payload = tagged events (tag 0xF0 interns the next string id)
//	index   = one uncompressed frame of frame offsets + totals
//	trailer = u64 index offset + magic "ALGTRIDX"
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// File layout constants.
const (
	// Magic opens every trace file.
	Magic = "ALGTRACE"
	// TrailerMagic closes every complete trace file.
	TrailerMagic = "ALGTRIDX"
	// Version is the current format version. Readers reject other versions.
	Version = 1

	headerSize  = 8 + 4 + 4
	trailerSize = 8 + 8
)

// Header flag bits.
const (
	// FlagCompress marks data-frame payloads as DEFLATE-compressed. The
	// index frame is always stored raw.
	FlagCompress uint32 = 1 << 0
)

// tagStrDef interns a string: the bytes that follow define the next
// sequential string id of the current frame. Event tags are the raw
// pipeline.Op values, which stay well below 0xF0.
const tagStrDef = 0xF0

// Decoder bounds. Real traces stay far under these; they exist so a
// corrupted or adversarial file fails with an error instead of exhausting
// memory.
const (
	// maxFramePayload bounds one frame's decoded payload size.
	maxFramePayload = 1 << 24
	// maxCapacity bounds a journaled entity capacity.
	maxCapacity = 1 << 20
)

// ErrCorrupt wraps every decoding failure, so callers can distinguish a
// damaged trace from an I/O error.
var ErrCorrupt = errors.New("trace: corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Varint helpers over byte slices. All reads are bounds-checked and return
// an error instead of panicking, so the decoder survives arbitrary input
// (the fuzz target's contract).

func putUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func putVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func readUvarint(b []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return 0, pos, corruptf("bad uvarint at %d", pos)
	}
	return v, pos + n, nil
}

func readVarint(b []byte, pos int) (int64, int, error) {
	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return 0, pos, corruptf("bad varint at %d", pos)
	}
	return v, pos + n, nil
}

func readByte(b []byte, pos int) (byte, int, error) {
	if pos >= len(b) {
		return 0, pos, corruptf("unexpected end at %d", pos)
	}
	return b[pos], pos + 1, nil
}

// readUint reads a uvarint and checks it fits a non-negative int below
// limit.
func readUint(b []byte, pos int, limit uint64, what string) (int, int, error) {
	v, pos, err := readUvarint(b, pos)
	if err != nil {
		return 0, pos, err
	}
	if v >= limit {
		return 0, pos, corruptf("%s %d out of range", what, v)
	}
	return int(v), pos, nil
}
