package trace

import "algoprof/internal/events"

// shadowEntity is the offline stand-in for a live heap entity. The reader
// materializes one per journaled allocation and mutates it from the
// recorded stream (field-put links, journaled element stores), so replayed
// listeners traverse exactly the structure the live listeners saw.
type shadowEntity struct {
	id       uint64
	typeName string
	classID  int
	array    bool
	capacity int
	mode     events.ElemMode
	links    []shadowLink // object reference fields, in first-put order
	slots    []shadowSlot // array elements, grown to the touched prefix
}

type shadowLink struct {
	fieldID int
	target  *shadowEntity
}

const (
	slotUnset uint8 = iota
	slotInt
	slotStr
	slotRef
)

type shadowSlot struct {
	kind uint8
	i    int64
	s    string
	ref  *shadowEntity
}

// EntityID implements events.Entity.
func (e *shadowEntity) EntityID() uint64 { return e.id }

// TypeName implements events.Entity.
func (e *shadowEntity) TypeName() string { return e.typeName }

// ClassID implements events.Entity.
func (e *shadowEntity) ClassID() int { return e.classID }

// IsArray implements events.Entity.
func (e *shadowEntity) IsArray() bool { return e.array }

// Capacity implements events.Entity.
func (e *shadowEntity) Capacity() int { return e.capacity }

// setLink records a field-put: a nil target (primitive or null store)
// clears the link, mirroring a live object whose reference field no longer
// holds an entity.
func (e *shadowEntity) setLink(fieldID int, target *shadowEntity) {
	for i := range e.links {
		if e.links[i].fieldID == fieldID {
			e.links[i].target = target
			return
		}
	}
	e.links = append(e.links, shadowLink{fieldID: fieldID, target: target})
}

// setSlot records a journaled array element store.
func (e *shadowEntity) setSlot(idx int, s shadowSlot) error {
	if idx >= e.capacity {
		return corruptf("store index %d beyond capacity %d", idx, e.capacity)
	}
	for idx >= len(e.slots) {
		e.slots = append(e.slots, shadowSlot{})
	}
	e.slots[idx] = s
	return nil
}

// ForEachRef implements events.Entity. Visit order is first-put order for
// objects and slot order for arrays; downstream consumers treat successor
// sets as unordered, so this matches the live heap's traversal semantics.
func (e *shadowEntity) ForEachRef(visit func(fieldID int, target events.Entity)) {
	if !e.array {
		for _, l := range e.links {
			if l.target != nil {
				visit(l.fieldID, l.target)
			}
		}
		return
	}
	if e.mode == events.ElemModeVal {
		return
	}
	for _, s := range e.slots {
		if s.kind == slotRef {
			visit(-1, s.ref)
		}
	}
}

// ForEachElemKey implements events.Entity, reproducing each ElemMode's live
// key sequence: reference arrays skip empty slots, primitive arrays visit
// every slot (unwritten slots as 0), and auto-mode arrays visit whatever a
// slot holds.
func (e *shadowEntity) ForEachElemKey(visit func(key events.ElemKey)) {
	if !e.array {
		return
	}
	if e.mode == events.ElemModeVal {
		for i := 0; i < e.capacity; i++ {
			if i < len(e.slots) && e.slots[i].kind == slotInt {
				visit(e.slots[i].i)
				continue
			}
			visit(int64(0))
		}
		return
	}
	for _, s := range e.slots {
		switch s.kind {
		case slotRef:
			visit(events.RefKey(s.ref.id))
		case slotStr:
			visit(s.s)
		case slotInt:
			if e.mode == events.ElemModeAuto {
				visit(s.i)
			}
		}
	}
}

var _ events.Entity = (*shadowEntity)(nil)

// shadowHeap resolves record entity ids to shadow entities during replay.
type shadowHeap map[int64]*shadowEntity

// alloc materializes the shadow of a journaled allocation.
func (h shadowHeap) alloc(id int64, classID int, capacity int, mode events.ElemMode, typeName string) (*shadowEntity, error) {
	if capacity > maxCapacity {
		return nil, corruptf("entity capacity %d exceeds limit", capacity)
	}
	e := &shadowEntity{
		id:       uint64(id),
		typeName: typeName,
		classID:  classID,
		array:    classID < 0,
		capacity: capacity,
		mode:     mode,
	}
	h[id] = e
	return e, nil
}

// get resolves an entity id; 0 is the nil entity. Ids never journaled
// (possible only in hand-crafted traces) resolve to an empty auto-mode
// stand-in rather than failing, so damaged traces still replay as far as
// their records allow.
func (h shadowHeap) get(id int64) *shadowEntity {
	if id == 0 {
		return nil
	}
	if e, ok := h[id]; ok {
		return e
	}
	e := &shadowEntity{id: uint64(id), typeName: "?", classID: -1, array: true, mode: events.ElemModeAuto}
	h[id] = e
	return e
}

// ent adapts a shadow entity to the events.Entity interface value stored in
// a record, keeping nil interface values for the nil entity.
func ent(e *shadowEntity) events.Entity {
	if e == nil {
		return nil
	}
	return e
}
