module algoprof

go 1.22
