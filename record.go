package algoprof

import (
	"fmt"
	"io"

	"algoprof/internal/core"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/snapshot"
	"algoprof/internal/trace"
	"algoprof/internal/vm"
)

// Record profiles src exactly like Run while streaming the full event
// stream — including the heap journal offline replay needs — to w as a
// trace file. The returned profile is identical to a plain Run with the
// same Config.
func Record(src string, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return RecordProgram(prog, cfg, w, topts)
}

// RecordProgram is Record for an already compiled program.
func RecordProgram(prog *bytecode.Program, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	prof := core.NewProfiler(ins, coreOptions(cfg))

	// Recording routes events through a synchronous transport so the trace
	// writer taps the same stream the profiler consumes; the VM's journal
	// hook adds the entity births and element stores that replay needs to
	// rebuild the heap.
	tp := pipeline.New(pipeline.Config{Synchronous: true})
	tp.Add("core", prof, pipeline.ConsumerOptions{HeapReader: true, Plan: ins.Plan})
	tw := trace.NewWriter(w, topts)
	tp.Add("trace", tw, pipeline.ConsumerOptions{})
	pr := tp.Producer()

	vmCfg := vm.Config{
		Listener: pr,
		Plan:     ins.Plan,
		Journal:  pr,
		PreWrite: pr.Barrier,
		Seed:     seedOf(cfg),
		Input:    cfg.Input,
		MaxSteps: cfg.MaxSteps,
	}
	machine := vm.New(ins.Prog, vmCfg)
	pr.BindClock(&machine.InstrCount)
	tp.Start()
	runErr := machine.Run()
	if cerr := tp.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	tw.SetInstructions(machine.InstrCount)
	if werr := tw.Close(); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return nil, runErr
	}
	return finishProfile(prof, cfg, machine)
}

// ReplayProgram rebuilds a profile offline from a recorded trace: the
// reader's records drive the same profiler core the live run used, over a
// shadow heap reconstructed from the stream. With the Config the trace was
// recorded under, the resulting profile is byte-identical to the live one
// (program output and stdout are not part of the event stream; the run
// store carries those in its manifest).
func ReplayProgram(prog *bytecode.Program, cfg Config, r *trace.Reader) (*Profile, error) {
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	prof := core.NewProfiler(ins, coreOptions(cfg))
	tp := pipeline.New(pipeline.Config{Synchronous: true})
	tp.Add("core", prof, pipeline.ConsumerOptions{HeapReader: true, Plan: ins.Plan})
	tp.Start()
	if err := r.Replay(tp.Dispatch); err != nil {
		return nil, err
	}
	prof.Finish()
	if errs := prof.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("algoprof: internal profiling error: %w", errs[0])
	}
	p := FromProfilerWith(prof, cfg.GroupStrategy)
	p.Instructions = r.Stats().Instructions
	return p, nil
}

// coreOptions maps the public Config to profiler-core options.
func coreOptions(cfg Config) core.Options {
	opts := core.Options{
		Criterion:   snapshot.Criterion(cfg.Criterion),
		SampleEvery: cfg.SampleEvery,
		DisableMemo: cfg.DisableMemo,
	}
	if cfg.EagerIdentify {
		opts.Identify = core.EagerIdentify
	}
	if cfg.SizeStrategy == UniqueElements {
		opts.SizeStrategy = snapshot.UniqueElements
	}
	return opts
}

func seedOf(cfg Config) uint64 {
	if cfg.Seed == 0 {
		return 1
	}
	return cfg.Seed
}

// finishProfile finalizes the core profiler and assembles the public
// profile with the machine's outputs attached.
func finishProfile(prof *core.Profiler, cfg Config, machine *vm.VM) (*Profile, error) {
	prof.Finish()
	if errs := prof.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("algoprof: internal profiling error: %w", errs[0])
	}
	p := FromProfilerWith(prof, cfg.GroupStrategy)
	p.Stdout = machine.Stdout
	p.Instructions = machine.InstrCount
	p.raw.machine = machine
	for _, v := range machine.Output {
		p.Output = append(p.Output, v.String())
	}
	return p, nil
}
