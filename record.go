package algoprof

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"algoprof/internal/core"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/snapshot"
	"algoprof/internal/trace"
	"algoprof/internal/verify"
	"algoprof/internal/vm"
)

// Record profiles src exactly like Run while streaming the full event
// stream — including the heap journal offline replay needs — to w as a
// trace file. The returned profile is identical to a plain Run with the
// same Config.
func Record(src string, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	return RecordContext(context.Background(), src, cfg, w, topts)
}

// RecordContext is Record with cooperative cancellation (see RunContext).
// On cancellation the trace writer aborts, leaving a recognizable partial
// trace — a valid header and whole CRC-framed records, no index — that
// readers recover through the truncated-trace path.
func RecordContext(ctx context.Context, src string, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return RecordProgramContext(ctx, prog, cfg, w, topts)
}

// RecordSinkContext is RecordContext for programs that may spawn
// threads: sink opens one trace destination per spawned thread id (see
// RecordProgramSinkContext).
func RecordSinkContext(ctx context.Context, src string, cfg Config, w io.Writer, topts trace.WriterOptions, sink ThreadTraceSink) (*Profile, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return RecordProgramSinkContext(ctx, prog, cfg, w, topts, sink)
}

// RecordProgram is Record for an already compiled program.
func RecordProgram(prog *bytecode.Program, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	return RecordProgramContext(context.Background(), prog, cfg, w, topts)
}

// RecordProgramContext is RecordProgram with cooperative cancellation (see
// RecordContext). Programs that spawn threads need a per-thread trace
// destination and must use RecordProgramSinkContext; without a sink a
// spawn fails the run with a typed VM error.
func RecordProgramContext(ctx context.Context, prog *bytecode.Program, cfg Config, w io.Writer, topts trace.WriterOptions) (*Profile, error) {
	return RecordProgramSinkContext(ctx, prog, cfg, w, topts, nil)
}

// RecordProgramSinkContext is RecordProgramContext for programs that may
// spawn threads: w receives the main thread's trace, and sink opens one
// additional destination per spawned thread id. Each thread's event
// stream — its own heap journal included — is recorded by the thread's
// own trace writer at its own heap barrier, so per-thread traces replay
// independently and byte-identically; the run store names them
// trace-t<tid>.bin and lists the ids in the manifest.
func RecordProgramSinkContext(ctx context.Context, prog *bytecode.Program, cfg Config, w io.Writer, topts trace.WriterOptions, sink ThreadTraceSink) (*Profile, error) {
	if cfg.Mode == ModePaths {
		// The trace format carries the exact event stream; path counters
		// elide precisely the records replay needs. Record in events mode
		// and profile the trace under either mode's semantics offline.
		return nil, fmt.Errorf("algoprof: trace recording requires events mode (got mode %q)", cfg.Mode)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	prof := core.NewProfiler(ins, coreOptions(cfg))

	// Recording routes events through a synchronous transport so the trace
	// writer taps the same stream the profiler consumes; the VM's journal
	// hook adds the entity births and element stores that replay needs to
	// rebuild the heap.
	tp := pipeline.New(pipeline.Config{Synchronous: true})
	tp.Add("core", prof, pipeline.ConsumerOptions{HeapReader: true, Plan: ins.Plan})
	if topts.MaxBytes == 0 {
		topts.MaxBytes = cfg.Limits.MaxTraceBytes
	}
	tw := trace.NewWriter(w, topts)
	tp.Add("trace", tw, pipeline.ConsumerOptions{})
	var chk *verify.Checker
	if cfg.Verify {
		chk = verify.NewChecker()
		tp.Add("verify", chk, pipeline.ConsumerOptions{})
	}
	pr := tp.Producer()

	threads := newThreadSessions(ins, cfg, false)
	threads.sink = sink
	threads.topts = topts

	vmCfg := vm.Config{
		Listener: pr,
		Plan:     ins.Plan,
		Journal:  pr,
		PreWrite: pr.Barrier,
		Seed:     seedOf(cfg),
		Input:    cfg.Input,
		MaxSteps: cfg.MaxSteps,
		Watchdog: watchdogFor(ctx, cfg.Limits, time.Now(), cfg.Watchdog),
	}
	if sink != nil {
		vmCfg.SpawnSession = threads.spawnSession
	}
	machine := vm.New(ins.Prog, vmCfg)
	pr.BindClock(&machine.InstrCount)
	tp.Start()
	extra, runErr := triageRunError(machine.Run())
	if cerr := tp.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr != nil && interrupted(runErr) {
		// Leave the partial trace on disk in its crash shape; the caller
		// keeps what replays and learns the run was cut short.
		if aerr := tw.Abort(); aerr != nil {
			runErr = fmt.Errorf("%w (trace abort: %v)", runErr, aerr)
		}
		return nil, salvage(func() *Profile {
			p, _ := finishProfile(prof, cfg, machine, true)
			if p != nil {
				_ = mergeThreadProfiles(threads, p, cfg, true)
			}
			return p
		}, runErr)
	}
	// The main trace carries the main thread's own instruction count;
	// spawned threads' traces carry theirs, and replay sums them back to
	// the live run's total.
	tw.SetInstructions(machine.InstrCount)
	if werr := tw.Close(); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return nil, runErr
	}
	if tw.Truncated() {
		extra = append(extra, "max-trace-bytes")
	}
	p, err := finishProfile(prof, cfg, machine, chk != nil, extra...)
	if err != nil {
		return nil, err
	}
	if err := mergeThreadProfiles(threads, p, cfg, false); err != nil {
		return nil, err
	}
	if err := runVerify(chk, prof, false, true); err != nil {
		return nil, err
	}
	return p, nil
}

// ReplayProgram rebuilds a profile offline from a recorded trace: the
// reader's records drive the same profiler core the live run used, over a
// shadow heap reconstructed from the stream. With the Config the trace was
// recorded under, the resulting profile is byte-identical to the live one
// (program output and stdout are not part of the event stream; the run
// store carries those in its manifest).
func ReplayProgram(prog *bytecode.Program, cfg Config, r *trace.Reader) (*Profile, error) {
	return ReplayProgramContext(context.Background(), prog, cfg, r)
}

// ReplayProgramContext is ReplayProgram with cooperative cancellation: ctx
// is checked at every frame boundary. A recovered (truncated) trace
// replays tolerantly — the profiler force-closes whatever repetitions the
// torn tail left open and the profile is marked degraded — so a crashed
// recording still yields its prefix's profile. Deterministic limits
// (MaxEvents, MaxLiveBytes) apply during replay exactly as they did live,
// which keeps replay-equality for degraded runs.
func ReplayProgramContext(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader) (*Profile, error) {
	return replayProgram(ctx, prog, cfg, r, r.ReplayContext)
}

// ReplayProgramParallel is ReplayProgramContext with the trace's per-frame
// decode work fanned out over workers goroutines (≤ 0 means GOMAXPROCS).
// The profile is byte-identical to a sequential replay's: records are still
// bound and dispatched in recorded order on one shadow heap (see
// trace.Reader.ReplayParallel). v1 and truncated traces fall back to the
// sequential path.
func ReplayProgramParallel(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader, workers int) (*Profile, error) {
	return replayProgram(ctx, prog, cfg, r, func(ctx context.Context, dispatch func(*pipeline.Record)) error {
		return r.ReplayParallel(ctx, workers, dispatch)
	})
}

// replayStrategy turns one trace reader into a replay driver — sequential
// (Reader.ReplayContext) or frame-parallel (Reader.ReplayParallel).
type replayStrategy func(*trace.Reader) func(context.Context, func(*pipeline.Record)) error

// ReplayProgramThreadsContext replays a threaded recording offline: r
// drives the main thread's profiler and each entry of threadTraces (keyed
// by thread id) drives a profiler of its own — the same per-thread trees
// the live run built — before the report-time merge folds them together.
// With the recording's Config the result is byte-identical to the live
// threaded profile.
func ReplayProgramThreadsContext(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader, threadTraces map[int]*trace.Reader) (*Profile, error) {
	return replayThreads(ctx, prog, cfg, r, threadTraces, func(tr *trace.Reader) func(context.Context, func(*pipeline.Record)) error {
		return tr.ReplayContext
	})
}

// ReplayProgramThreadsParallel is ReplayProgramThreadsContext with each
// trace's per-frame decode fanned out over workers goroutines. Traces are
// still replayed one at a time in thread-id order — parallelism is within
// a trace, ordering across traces is irrelevant to the merged report.
func ReplayProgramThreadsParallel(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader, threadTraces map[int]*trace.Reader, workers int) (*Profile, error) {
	return replayThreads(ctx, prog, cfg, r, threadTraces, func(tr *trace.Reader) func(context.Context, func(*pipeline.Record)) error {
		return func(ctx context.Context, dispatch func(*pipeline.Record)) error {
			return tr.ReplayParallel(ctx, workers, dispatch)
		}
	})
}

// replayThreads replays the main trace through replayProgram, then each
// per-thread trace through its own profiler, and merges exactly as a live
// threaded run does.
func replayThreads(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader, threadTraces map[int]*trace.Reader, strat replayStrategy) (*Profile, error) {
	p, err := replayProgram(ctx, prog, cfg, r, strat(r))
	if err != nil {
		return nil, err
	}
	if len(threadTraces) == 0 {
		return p, nil
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	tids := make([]int, 0, len(threadTraces))
	for tid := range threadTraces {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	ts := &threadSessions{ins: ins, cfg: cfg}
	var instrs uint64
	for _, tid := range tids {
		tr := threadTraces[tid]
		prof := core.NewProfiler(ins, coreOptions(cfg))
		tp := pipeline.New(pipeline.Config{Synchronous: true})
		tp.Add("core", prof, pipeline.ConsumerOptions{HeapReader: true, Plan: ins.Plan})
		var chk *verify.Checker
		if cfg.Verify {
			chk = verify.NewChecker()
			tp.Add("verify", chk, pipeline.ConsumerOptions{})
		}
		tp.Start()
		if err := strat(tr)(ctx, tp.Dispatch); err != nil {
			return nil, fmt.Errorf("thread %d: %w", tid, err)
		}
		s := &threadSession{tid: tid, prof: prof, chk: chk}
		if tr.Stats().Truncated {
			s.openOK = true
			s.extraReasons = []string{"truncated-trace"}
		}
		ts.sessions = append(ts.sessions, s)
		instrs += tr.Stats().Instructions
	}
	if err := mergeThreadProfiles(ts, p, cfg, false); err != nil {
		return nil, err
	}
	p.Instructions += instrs
	return p, nil
}

// replayProgram drives one replay strategy (sequential or parallel) through
// the shared profiler/pipeline scaffolding.
func replayProgram(ctx context.Context, prog *bytecode.Program, cfg Config, r *trace.Reader, replay func(context.Context, func(*pipeline.Record)) error) (*Profile, error) {
	if cfg.Mode == ModePaths {
		return nil, fmt.Errorf("algoprof: trace replay requires events mode (got mode %q)", cfg.Mode)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	prof := core.NewProfiler(ins, coreOptions(cfg))
	tp := pipeline.New(pipeline.Config{Synchronous: true})
	tp.Add("core", prof, pipeline.ConsumerOptions{HeapReader: true, Plan: ins.Plan})
	var chk *verify.Checker
	if cfg.Verify {
		chk = verify.NewChecker()
		tp.Add("verify", chk, pipeline.ConsumerOptions{})
	}
	tp.Start()
	truncated := r.Stats().Truncated
	if err := replay(ctx, tp.Dispatch); err != nil {
		return nil, err
	}
	prof.Finish()
	if errs := prof.Errors(); len(errs) > 0 && !truncated && chk == nil {
		// With the verifier attached, profiler errors surface through it
		// instead, as typed corruption-class violations.
		return nil, fmt.Errorf("algoprof: internal profiling error: %w", errs[0])
	}
	p := FromProfilerWith(prof, cfg.GroupStrategy)
	p.Instructions = r.Stats().Instructions
	p.DegradedReasons = prof.DegradedReasons()
	if truncated {
		p.DegradedReasons = append(p.DegradedReasons, "truncated-trace")
	}
	p.Degraded = len(p.DegradedReasons) > 0
	if err := runVerify(chk, prof, truncated, true); err != nil {
		return nil, err
	}
	return p, nil
}

// coreOptions maps the public Config to profiler-core options.
func coreOptions(cfg Config) core.Options {
	opts := core.Options{
		Criterion:    snapshot.Criterion(cfg.Criterion),
		SampleEvery:  cfg.SampleEvery,
		DisableMemo:  cfg.DisableMemo,
		MaxEvents:    cfg.Limits.MaxEvents,
		MaxLiveBytes: cfg.Limits.MaxLiveBytes,
	}
	if cfg.EagerIdentify {
		opts.Identify = core.EagerIdentify
	}
	if cfg.SizeStrategy == UniqueElements {
		opts.SizeStrategy = snapshot.UniqueElements
	}
	return opts
}

func seedOf(cfg Config) uint64 {
	if cfg.Seed == 0 {
		return 1
	}
	return cfg.Seed
}

// finishProfile finalizes the core profiler and assembles the public
// profile with the machine's outputs attached. tolerant skips the
// internal-error check — used when salvaging an interrupted run, whose
// stream is unbalanced by construction. extra degraded-reasons (deadline,
// trace truncation) are appended after the profiler's own.
func finishProfile(prof *core.Profiler, cfg Config, machine *vm.VM, tolerant bool, extra ...string) (*Profile, error) {
	prof.Finish()
	if errs := prof.Errors(); len(errs) > 0 && !tolerant {
		return nil, fmt.Errorf("algoprof: internal profiling error: %w", errs[0])
	}
	p := FromProfilerWith(prof, cfg.GroupStrategy)
	p.Stdout = machine.Stdout
	p.Instructions = machine.TotalInstructions()
	p.raw.machine = machine
	for _, v := range machine.Output {
		p.Output = append(p.Output, v.String())
	}
	p.DegradedReasons = append(prof.DegradedReasons(), extra...)
	p.Degraded = len(p.DegradedReasons) > 0
	return p, nil
}
