package algoprof_test

import (
	"encoding/json"
	"strings"
	"testing"

	"algoprof"
)

const quickstartSrc = `
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    for (int size = 2; size <= 32; size = size + 2) {
      Node head = build(size);
      int n = count(head);
      check(n == size);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node(rand(100));
      x.next = head;
      head = x;
    }
    return head;
  }
  static int count(Node head) {
    int n = 0;
    Node cur = head;
    while (cur != null) { n++; cur = cur.next; }
    return n;
  }
}`

func TestRunQuickstart(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Algorithms) < 3 {
		t.Fatalf("found %d algorithms, want at least 3 (harness, build, count)", len(prof.Algorithms))
	}
	count := prof.Find("Main.count/loop1")
	if count == nil {
		t.Fatal("count algorithm missing")
	}
	if !strings.Contains(count.Description, "Traversal of a Node-based recursive structure") {
		t.Errorf("count description = %q", count.Description)
	}
	if len(count.CostFunctions) != 1 {
		t.Fatalf("count has %d cost functions", len(count.CostFunctions))
	}
	cf := count.CostFunctions[0]
	if cf.Model != "n" {
		t.Errorf("count model = %s, want n", cf.Model)
	}
	if cf.R2 < 0.99 {
		t.Errorf("count fit R2 = %f", cf.R2)
	}
	if len(cf.Points) == 0 {
		t.Error("no points in cost function")
	}
}

func TestRunCompileError(t *testing.T) {
	_, err := algoprof.Run("class {", algoprof.Config{})
	if err == nil {
		t.Fatal("want compile error")
	}
}

func TestRunRuntimeError(t *testing.T) {
	_, err := algoprof.Run(`class Main { public static void main() { check(false); } }`, algoprof.Config{})
	if err == nil || !strings.Contains(err.Error(), "check failed") {
		t.Fatalf("want check failure, got %v", err)
	}
}

func TestTreeRendering(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tree := prof.Tree()
	for _, want := range []string{
		"Program",
		"Main.main/loop1",
		"Main.build/loop1",
		"Main.count/loop1",
		"algorithm #",
		"steps ≈",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestPlotAlgorithm(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plot, err := prof.PlotAlgorithm("Main.count/loop1", "", 48, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot, "fit:") || !strings.Contains(plot, "*") {
		t.Errorf("plot missing fit:\n%s", plot)
	}
	if _, err := prof.PlotAlgorithm("no/such", "", 48, 12); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestStdoutAndOutputCapture(t *testing.T) {
	prof, err := algoprof.Run(`
class Main {
  public static void main() {
    print("hello");
    writeOutput(41 + 1);
  }
}`, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Stdout) != 1 || prof.Stdout[0] != "hello" {
		t.Errorf("stdout = %v", prof.Stdout)
	}
	if len(prof.Output) != 1 || prof.Output[0] != "42" {
		t.Errorf("output = %v", prof.Output)
	}
	if prof.Instructions == 0 {
		t.Error("instruction count missing")
	}
}

func TestSeedChangesRandomness(t *testing.T) {
	src := `
class Main {
  public static void main() {
    for (int i = 0; i < 3; i++) { writeOutput(rand(1000)); }
  }
}`
	p1, err := algoprof.Run(src, algoprof.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := algoprof.Run(src, algoprof.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p1.Output, ",") == strings.Join(p2.Output, ",") {
		t.Error("different seeds should change rand output")
	}
	p3, err := algoprof.Run(src, algoprof.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p1.Output, ",") != strings.Join(p3.Output, ",") {
		t.Error("same seed must reproduce output")
	}
}

func TestInputFeed(t *testing.T) {
	prof, err := algoprof.Run(`
class Main {
  public static void main() {
    writeOutput(readInput() + readInput());
  }
}`, algoprof.Config{Input: []int64{40, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Output) != 1 || prof.Output[0] != "42" {
		t.Errorf("output = %v", prof.Output)
	}
}

func TestAlgorithmsSortedByCost(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prof.Algorithms); i++ {
		if prof.Algorithms[i-1].TotalSteps < prof.Algorithms[i].TotalSteps {
			t.Fatalf("algorithms not sorted by TotalSteps at %d", i)
		}
	}
}

func TestMaxStepsBudget(t *testing.T) {
	_, err := algoprof.Run(`
class Main { public static void main() { while (true) { } } }`,
		algoprof.Config{MaxSteps: 100000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestJSONExport(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Algorithms []struct {
			Name          string `json:"Name"`
			Description   string `json:"Description"`
			CostFunctions []struct {
				Model string  `json:"Model"`
				Coeff float64 `json:"Coeff"`
			} `json:"CostFunctions"`
		} `json:"algorithms"`
		Instructions uint64 `json:"instructions"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(decoded.Algorithms) == 0 || decoded.Instructions == 0 {
		t.Errorf("decoded: %+v", decoded)
	}
	found := false
	for _, a := range decoded.Algorithms {
		if a.Name == "Main.count/loop1" && len(a.CostFunctions) == 1 && a.CostFunctions[0].Model == "n" {
			found = true
		}
	}
	if !found {
		t.Errorf("count algorithm not round-tripped:\n%s", data)
	}
}

func TestGroupStrategyConfig(t *testing.T) {
	src := `
class Main {
  public static void main() {
    int[][] m = new int[5][5];
    for (int i = 0; i < 5; i++) {
      for (int j = 0; j < 5; j++) { m[i][j] = i + j; }
    }
  }
}`
	shared, err := algoprof.Run(src, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := algoprof.Run(src, algoprof.Config{GroupStrategy: algoprof.SameMethod})
	if err != nil {
		t.Fatal(err)
	}
	outerShared := shared.Find("Main.main/loop1")
	if outerShared == nil || len(outerShared.Nodes) != 1 {
		t.Errorf("shared-input: outer loop should be alone, got %+v", outerShared)
	}
	outerSame := same.Find("Main.main/loop1")
	if outerSame == nil || len(outerSame.Nodes) != 2 {
		t.Errorf("same-method: nest should group, got %+v", outerSame)
	}
}

func TestCriterionConfig(t *testing.T) {
	// Under SameType, the fresh per-iteration lists unify into one input.
	src := `
class Node { Node next; }
class Main {
  public static void main() {
    for (int r = 0; r < 4; r++) {
      Node head = null;
      for (int i = 0; i < 6; i++) {
        Node x = new Node();
        x.next = head;
        head = x;
      }
    }
  }
}`
	some, err := algoprof.Run(src, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameType, err := algoprof.Run(src, algoprof.Config{Criterion: algoprof.SameType})
	if err != nil {
		t.Fatal(err)
	}
	pSome, _ := some.Raw()
	pType, _ := sameType.Raw()
	if got := len(pSome.Registry().CanonicalIDs()); got != 4 {
		t.Errorf("some-elements inputs = %d, want 4", got)
	}
	if got := len(pType.Registry().CanonicalIDs()); got != 1 {
		t.Errorf("same-type inputs = %d, want 1", got)
	}
}

func TestSampleEveryConfig(t *testing.T) {
	src := `
class Main {
  static void work(int n) { for (int i = 0; i < n; i++) { } }
  public static void main() {
    for (int r = 0; r < 20; r++) { work(r); }
  }
}`
	full, err := algoprof.Run(src, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := algoprof.Run(src, algoprof.Config{SampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	fw := full.Find("Main.work/loop1")
	sw := sampled.Find("Main.work/loop1")
	if fw.Invocations != 20 || sw.Invocations != 5 {
		t.Errorf("invocations full=%d sampled=%d, want 20/5", fw.Invocations, sw.Invocations)
	}
}

func TestBinarySearchLogarithmicCostFunction(t *testing.T) {
	// Binary search over a sorted array: the per-query cost function must
	// come out logarithmic — exercising the log-n model end to end.
	src := `
class Main {
  public static void main() {
    for (int size = 8; size <= 512; size = size * 2) {
      int[] a = new int[size];
      for (int i = 0; i < size; i++) { a[i] = i * 3; }
      for (int q = 0; q < 6; q++) {
        int idx = search(a, rand(size * 3));
        check(idx >= 0 - 1);
      }
    }
  }
  static int search(int[] a, int key) {
    int lo = 0;
    int hi = a.length - 1;
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      int v = a[mid];
      if (v == key) { return mid; }
      if (v < key) { lo = mid + 1; }
      else { hi = mid - 1; }
    }
    return -1;
  }
}`
	prof, err := algoprof.Run(src, algoprof.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	search := prof.Find("Main.search/loop1")
	if search == nil {
		t.Fatal("no search algorithm")
	}
	if len(search.CostFunctions) == 0 {
		t.Fatal("no cost function for binary search")
	}
	cf := search.CostFunctions[0]
	if cf.Model != "log n" {
		t.Errorf("binary search model = %s, want log n", cf.Model)
	}
	if !strings.Contains(search.Description, "Traversal") &&
		!strings.Contains(search.Description, "array") {
		t.Logf("description: %q", search.Description)
	}
}

func TestOperationsBreakdown(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	build := prof.Find("Main.build/loop1")
	if build == nil {
		t.Fatal("no build algorithm")
	}
	// 16 sizes (2..32 step 2): Σ size = 272 appends.
	if build.Operations["NEW"] != 272 {
		t.Errorf("NEW = %d, want 272", build.Operations["NEW"])
	}
	if build.Operations["PUT"] != 272 {
		t.Errorf("PUT = %d, want 272 (one next-link write per node)", build.Operations["PUT"])
	}
	if build.Operations["STEP"] != 272 {
		t.Errorf("STEP = %d, want 272", build.Operations["STEP"])
	}
	count := prof.Find("Main.count/loop1")
	if count.Operations["GET"] != 272 {
		t.Errorf("count GET = %d, want 272", count.Operations["GET"])
	}
	if count.Operations["PUT"] != 0 {
		t.Errorf("count PUT = %d, want 0 (pure traversal)", count.Operations["PUT"])
	}
}

func TestProfileDeterminism(t *testing.T) {
	// Same program + same seed => byte-identical JSON profile and tree.
	run := func() (string, string) {
		prof, err := algoprof.Run(quickstartSrc, algoprof.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		data, err := prof.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(data), prof.Tree()
	}
	j1, t1 := run()
	j2, t2 := run()
	if j1 != j2 {
		t.Error("JSON profiles differ across identical runs")
	}
	if t1 != t2 {
		t.Error("rendered trees differ across identical runs")
	}
}
