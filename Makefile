GO ?= go

.PHONY: check build test vet race bench bench-smoke fuzz-smoke chaos-smoke paper

# The tier-1 gate plus the concurrency-sensitive packages under the race
# detector. Run before committing.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector: the event
# transport (ring buffer, work-stealing barrier), the core profiler and
# probe consuming it, the experiments worker pool that the snapshot
# registry runs inside, the trace subsystem (its writer runs on a
# consumer goroutine), and the root package (the events/paths equivalence
# suite, which stresses both frontends end to end).
race:
	$(GO) test -race . ./internal/events/... ./internal/core ./internal/experiments/... ./internal/trace/... ./probe

# Regenerate the machine-readable perf baselines (use -j 1 timings):
# BENCH_overhead.json (instrumentation overhead + memo ablation) and
# BENCH_pipeline.json (event-transport configurations).
bench:
	$(GO) run ./cmd/paper -j 1 bench -out BENCH_overhead.json -pipeline-out BENCH_pipeline.json

# One-iteration pass over every Go micro-benchmark — a fast compile-and-run
# sanity check that the benchmarks themselves still work — followed by the
# per-mode overhead regression gate: fail when paths-mode slowdown exceeds
# the recorded BENCH_overhead.json baseline by more than 1.5x.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	$(GO) run ./cmd/paper -j 1 bench -check

# Short live-fuzz legs over the two decoder no-panic contracts: the trace
# reader must recover-or-refuse arbitrary bytes, and the path-counter
# decoder must reject arbitrary table/counter combinations without
# crashing or miscounting. The seed corpora also run as plain fixtures in
# `make test`.
fuzz-smoke:
	$(GO) test -run Fuzz -fuzz=FuzzReplay -fuzztime=10s ./internal/trace
	$(GO) test -run Fuzz -fuzz=FuzzDecode -fuzztime=10s ./internal/pathdecode

# Seeded fault-injection sweep through the whole pipeline (see
# docs/FAULTS.md): every schedule must succeed, degrade deterministically,
# or fail with a typed fault class — any other outcome exits non-zero.
chaos-smoke:
	$(GO) run ./cmd/algoprof chaos -seeds 32

# Regenerate every table and figure of the paper.
paper:
	$(GO) run ./cmd/paper all
