GO ?= go

.PHONY: check build test vet race replay-race bench bench-smoke fuzz-smoke chaos-smoke service-smoke dist-chaos-smoke bench-service bench-dispatch paper

# The tier-1 gate plus the concurrency-sensitive packages under the race
# detector. Run before committing.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector: the event
# transport (ring buffer, work-stealing barrier, and the SPSC ownership
# guard, which only arms under -race), the core profiler and probe
# consuming it, the VM (spawn/join thread goroutines), the experiments
# worker pool that the snapshot registry runs inside, the trace subsystem
# (its writer runs on a consumer goroutine; the store's concurrent-record
# reservation), the distributed dispatcher (lease timers, breaker state,
# and worker keyed locks race against heartbeat streams), and the root
# package (the events/paths equivalence suite and the threaded
# transport-equivalence gate, which runs ≥2 concurrent per-thread
# producers). Vet runs first so the leg is self-contained in CI.
race:
	$(GO) vet ./...
	$(GO) test -race . ./internal/events/... ./internal/core ./internal/vm ./internal/experiments/... ./internal/trace/... ./internal/service ./internal/dispatch ./probe

# The parallel-replay surface under the race detector, repeated: worker
# fan-out, chunk merging, cancellation, and the fleet differ are exactly
# the code where a rare interleaving hides, so this leg runs them -count=3.
replay-race:
	$(GO) test -race -count=3 -run 'ReplayParallel|ReplayRange|Fleet|ParallelMatches' . ./internal/trace/...

# Regenerate the machine-readable perf baselines (use -j 1 timings):
# BENCH_overhead.json (instrumentation overhead + memo ablation),
# BENCH_pipeline.json (event-transport configurations), and
# BENCH_replay.json (parallel trace replay + Merkle diff).
bench:
	$(GO) run ./cmd/paper -j 1 bench -out BENCH_overhead.json -pipeline-out BENCH_pipeline.json -replay-out BENCH_replay.json

# One-iteration pass over every Go micro-benchmark — a fast compile-and-run
# sanity check that the benchmarks themselves still work — followed by the
# regression gates: per-mode overhead (fail when paths-mode slowdown
# exceeds the recorded BENCH_overhead.json baseline by more than 1.5x) and
# parallel replay (fail when the parallel stream diverges from sequential,
# or is slower than sequential on a multi-core runner).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	$(GO) run ./cmd/paper -j 1 bench -check

# Short live-fuzz legs over the decoder no-panic contracts: the trace
# reader must recover-or-refuse arbitrary bytes (v1 recovery scan and the
# v2 surface — checkpoints, range replay, parallel replay, range proofs),
# the checkpoint decoder must reject damage typed, and the path-counter
# decoder must reject arbitrary table/counter combinations without
# crashing or miscounting. The seed corpora also run as plain fixtures in
# `make test`.
fuzz-smoke:
	$(GO) test -run Fuzz -fuzz='FuzzReplay$$' -fuzztime=10s ./internal/trace
	$(GO) test -run Fuzz -fuzz=FuzzReplayV2 -fuzztime=10s ./internal/trace
	$(GO) test -run Fuzz -fuzz=FuzzCheckpointDecode -fuzztime=10s ./internal/trace
	$(GO) test -run Fuzz -fuzz=FuzzDecode -fuzztime=10s ./internal/pathdecode

# Seeded fault-injection sweep through the whole pipeline (see
# docs/FAULTS.md): every schedule must succeed, degrade deterministically,
# or fail with a typed fault class — any other outcome exits non-zero.
chaos-smoke:
	$(GO) run ./cmd/algoprof chaos -seeds 32
	$(GO) run ./cmd/algoprof chaos -service -seeds 16

# Distributed-dispatch chaos sweep under the race detector (see
# docs/SERVICE.md "Distributed operation"): seeded worker-crash /
# partition / slow-worker / corrupt-response schedules through a real
# daemon routing jobs to two worker HTTP servers. Zero lost jobs, typed
# failures only, and no damaged artifact ever ingested — any other
# outcome exits non-zero. Then a short distributed benchmark with its
# -check gate against a throwaway output file.
dist-chaos-smoke:
	$(GO) run -race ./cmd/algoprof chaos -dist -seeds 8
	$(GO) run ./cmd/algoprofd distbench -jobs 12 -out /tmp/BENCH_dispatch_smoke.json -check
	rm -f /tmp/BENCH_dispatch_smoke.json

# End-to-end daemon smoke (see docs/SERVICE.md): boot an in-process
# algoprofd on an ephemeral port, submit a job over HTTP, stream its NDJSON
# result, audit the persisted run (the same checks `algoprof verify` runs),
# byte-compare the returned profile against the library API, then a short
# loadgen where every job must terminate ok/degraded/typed-failed with
# zero lost.
service-smoke:
	$(GO) run ./cmd/algoprofd smoke -jobs 60

# Regenerate the committed BENCH_service.json baseline: a real daemon on a
# local port hammered with 1000 concurrent jobs across 4 tenants.
bench-service:
	$(GO) build -o /tmp/algoprofd-bench ./cmd/algoprofd
	/tmp/algoprofd-bench serve -addr 127.0.0.1:7171 -store /tmp/algoprofd-bench-store & \
	APD=$$!; sleep 1; \
	/tmp/algoprofd-bench loadgen -addr http://127.0.0.1:7171 -jobs 1000 -c 64 -tenants 4 -out BENCH_service.json -check; \
	RC=$$?; kill -TERM $$APD; wait $$APD 2>/dev/null; rm -rf /tmp/algoprofd-bench-store; exit $$RC

# Regenerate the committed BENCH_dispatch.json baseline: a crash-0/1/2
# leg each pushing a batch through the distributed dispatch stack while
# that many workers die abruptly mid-batch. The -check gate requires
# zero lost jobs and zero untyped failures in every leg.
bench-dispatch:
	$(GO) run ./cmd/algoprofd distbench -out BENCH_dispatch.json -check

# Regenerate every table and figure of the paper.
paper:
	$(GO) run ./cmd/paper all
