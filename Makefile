GO ?= go

.PHONY: check build test vet race bench bench-smoke fuzz-smoke chaos-smoke paper

# The tier-1 gate plus the concurrency-sensitive packages under the race
# detector. Run before committing.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector: the event
# transport (ring buffer, work-stealing barrier), the core profiler and
# probe consuming it, the experiments worker pool that the snapshot
# registry runs inside, and the trace subsystem (its writer runs on a
# consumer goroutine).
race:
	$(GO) test -race ./internal/events/... ./internal/core ./internal/experiments/... ./internal/trace/... ./probe

# Regenerate the machine-readable perf baselines (use -j 1 timings):
# BENCH_overhead.json (instrumentation overhead + memo ablation) and
# BENCH_pipeline.json (event-transport configurations).
bench:
	$(GO) run ./cmd/paper -j 1 bench -out BENCH_overhead.json -pipeline-out BENCH_pipeline.json

# One-iteration pass over every Go micro-benchmark — a fast compile-and-run
# sanity check that the benchmarks themselves still work.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# A short live-fuzz leg over the trace decoder's no-panic contract: the
# reader must recover-or-refuse arbitrary bytes, never crash. The seed
# corpus also runs as plain fixtures in `make test` (TestFuzzCorpusRecovery).
fuzz-smoke:
	$(GO) test -run Fuzz -fuzz=FuzzReplay -fuzztime=10s ./internal/trace

# Seeded fault-injection sweep through the whole pipeline (see
# docs/FAULTS.md): every schedule must succeed, degrade deterministically,
# or fail with a typed fault class — any other outcome exits non-zero.
chaos-smoke:
	$(GO) run ./cmd/algoprof chaos -seeds 32

# Regenerate every table and figure of the paper.
paper:
	$(GO) run ./cmd/paper all
