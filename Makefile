GO ?= go

.PHONY: check build test vet race bench paper

# The tier-1 gate plus the concurrency-sensitive packages under the race
# detector. Run before committing.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments package hosts the parallel sweep runner; the snapshot
# registry and core profiler run inside its worker pool.
race:
	$(GO) test -race ./internal/experiments/...

# Regenerate the machine-readable overhead baseline (use -j 1 timings).
bench:
	$(GO) run ./cmd/paper -j 1 bench -out BENCH_overhead.json

# Regenerate every table and figure of the paper.
paper:
	$(GO) run ./cmd/paper all
