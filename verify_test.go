package algoprof_test

import (
	"bytes"
	"errors"
	"testing"

	"algoprof"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/faultinject"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
	"algoprof/internal/verify"
	"algoprof/internal/workloads"
)

func compile(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// dropOneLoopExit re-encodes a trace with the middle loop-exit record
// removed. Every frame CRC is valid in the result; only the stream's
// meaning is damaged — exactly the class of fault a checksum cannot catch
// and the invariant verifier must.
func dropOneLoopExit(t *testing.T, data []byte) []byte {
	t.Helper()
	r, err := trace.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var recs []pipeline.Record
	if err := r.Replay(func(rec *pipeline.Record) {
		recs = append(recs, *rec)
	}); err != nil {
		t.Fatal(err)
	}
	var exits []int
	for i := range recs {
		if recs[i].Op == pipeline.OpLoopExit {
			exits = append(exits, i)
		}
	}
	if len(exits) == 0 {
		t.Fatal("trace has no loop exits to drop")
	}
	drop := exits[len(exits)/2]
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, trace.WriterOptions{})
	for i := range recs {
		if i == drop {
			continue
		}
		tw.Record(&recs[i])
	}
	tw.SetInstructions(r.Stats().Instructions)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// verifyCorpus covers the stream shapes that have historically been the
// tricky ones: nested loops with data structures, recursion with folding
// (merge sort), exceptions unwinding through open loops, and growth
// workloads with heavy journal traffic.
func verifyCorpus() map[string]string {
	return map[string]string{
		"running":   workloads.RunningExample(workloads.Random, 48, 8, 1),
		"sorts":     workloads.MergeVsInsertion(32, 8, 1),
		"growth":    workloads.ArrayListGrow(false, 48, 8, 1),
		"listing4":  workloads.Listing4(24),
		"exception": exceptionSrc,
	}
}

// exceptionSrc throws out of a nested loop inside a helper method, so the
// unwind path (loop exits emitted innermost-first, then the method exit)
// is part of the verified stream.
const exceptionSrc = `
class Stop { int at; Stop(int at) { this.at = at; } }
class Main {
  public static void main() {
    int total = 0;
    for (int r = 0; r < 6; r++) {
      total = total + scan(r);
    }
    check(total > 0);
  }
  static int scan(int limit) {
    int n = 0;
    try {
      for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 10; j++) {
          n = n + 1;
          if (i * 10 + j > limit * 7) { throw new Stop(n); }
        }
      }
    } catch (Stop s) {
      return s.at;
    }
    return n;
  }
}`

// TestVerifyCleanRuns: the online verifier must pass every corpus program
// on all three paths — synchronous run, pipelined run, and record — and
// the verified profile must be identical to the unverified one.
func TestVerifyCleanRuns(t *testing.T) {
	for name, src := range verifyCorpus() {
		t.Run(name, func(t *testing.T) {
			base, err := algoprof.Run(src, algoprof.Config{})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			for _, mode := range []struct {
				label string
				cfg   algoprof.Config
			}{
				{"sync", algoprof.Config{Verify: true}},
				{"pipelined", algoprof.Config{Verify: true, Pipelined: true}},
			} {
				p, err := algoprof.Run(src, mode.cfg)
				if err != nil {
					t.Fatalf("%s verified run: %v", mode.label, err)
				}
				assertSameAlgorithms(t, mode.label, base, p)
			}
			var buf bytes.Buffer
			p, err := algoprof.Record(src, algoprof.Config{Verify: true}, &buf, trace.WriterOptions{})
			if err != nil {
				t.Fatalf("verified record: %v", err)
			}
			assertSameAlgorithms(t, "record", base, p)

			r, err := trace.NewReader(buf.Bytes())
			if err != nil {
				t.Fatalf("reopen trace: %v", err)
			}
			prog := compile(t, src)
			rp, err := algoprof.ReplayProgram(prog, algoprof.Config{Verify: true}, r)
			if err != nil {
				t.Fatalf("verified replay: %v", err)
			}
			assertSameAlgorithms(t, "replay", base, rp)
		})
	}
}

// TestVerifySampledRun: cost conservation must hold under invocation
// sampling (totals exact, history thinned).
func TestVerifySampledRun(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 48, 8, 1)
	if _, err := algoprof.Run(src, algoprof.Config{Verify: true, SampleEvery: 4}); err != nil {
		t.Fatalf("verified sampled run: %v", err)
	}
	if _, err := algoprof.Run(src, algoprof.Config{Verify: true, Limits: algoprof.Limits{MaxEvents: 500}}); err != nil {
		t.Fatalf("verified degraded run: %v", err)
	}
}

// TestVerifyFlagsCorruptStream: a deliberately damaged stream must fail
// the verified replay with a typed corruption-class error, never pass.
func TestVerifyFlagsCorruptStream(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 32, 8, 1)
	var buf bytes.Buffer
	if _, err := algoprof.Record(src, algoprof.Config{}, &buf, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	// Re-frame the trace with one loop-exit record dropped: frame CRCs are
	// recomputed, so only the verifier can notice the imbalance.
	data := dropOneLoopExit(t, buf.Bytes())
	r, err := trace.NewReader(data)
	if err != nil {
		t.Fatalf("reopen tampered trace: %v", err)
	}
	prog := compile(t, src)
	_, err = algoprof.ReplayProgram(prog, algoprof.Config{Verify: true}, r)
	if err == nil {
		t.Fatal("verified replay of tampered trace succeeded")
	}
	var verr *verify.Error
	if !errors.As(err, &verr) {
		t.Fatalf("error %v (%T), want *verify.Error", err, err)
	}
	if got := faultinject.ClassOf(err); got != faultinject.Corruption {
		t.Errorf("ClassOf = %v, want corruption", got)
	}
}

func assertSameAlgorithms(t *testing.T, label string, want, got *algoprof.Profile) {
	t.Helper()
	wj, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gj, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Errorf("%s: verified profile differs from baseline", label)
	}
}
