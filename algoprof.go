// Package algoprof is a Go reproduction of "Algorithmic Profiling"
// (Zaparanuks & Hauswirth, PLDI 2012).
//
// An algorithmic profiler does not just report where a program spends its
// resources — it reports a *cost function*: for each algorithm it finds in
// the program, it automatically determines the algorithm's inputs,
// measures their sizes, counts high-level costs (algorithmic steps,
// structure reads/writes, element creations, I/O operations), and fits an
// empirical cost function relating input size to cost.
//
// The profiled programs are written in MJ, a small Java-like language
// compiled to bytecode and executed by an instrumented interpreter — the
// substitute for the paper's JVM instrumentation. The top-level entry
// point is Run:
//
//	profile, err := algoprof.Run(src, algoprof.Config{})
//	fmt.Println(profile.Tree())
//	for _, alg := range profile.Algorithms {
//	    fmt.Println(alg.Name, alg.Description, alg.CostFunctions)
//	}
package algoprof

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"algoprof/internal/classify"
	"algoprof/internal/core"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/fit"
	"algoprof/internal/group"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/report"
	"algoprof/internal/verify"
	"algoprof/internal/vm"
)

// SizeStrategy selects how array input sizes are measured (paper §3.4).
type SizeStrategy int

// Array size strategies.
const (
	// Capacity counts array slots.
	Capacity SizeStrategy = iota
	// UniqueElements counts distinct elements (approximates the used
	// fraction of over-allocated arrays).
	UniqueElements
)

// Criterion selects the snapshot equivalence criterion (paper §2.4).
type Criterion int

// Equivalence criteria.
const (
	// SomeElements (default): snapshots sharing one element are the same
	// input — the paper's choice.
	SomeElements Criterion = iota
	// AllElements: only identical element sets unify.
	AllElements
	// SameArray: arrays unify by identity only.
	SameArray
	// SameType: snapshots with the same element type signature unify.
	SameType
)

// GroupStrategy selects how repetitions group into algorithms (§2.5).
type GroupStrategy int

// Grouping strategies.
const (
	// SharedInput (default): parent and child group when they work on a
	// common input — the paper's automatic strategy.
	SharedInput GroupStrategy = iota
	// SameMethod: parent and child group when they are repetitions of the
	// same method — the alternative §2.5 mentions.
	SameMethod
)

// Profiling modes (Config.Mode).
const (
	// ModeEvents streams one event per structure access and loop
	// iteration — the exact baseline (default).
	ModeEvents = "events"
	// ModePaths counts Ball–Larus whole-iteration paths per loop and
	// decodes iteration and access totals offline from the counters —
	// the low-overhead mode.
	ModePaths = "paths"
)

// Config controls a profiling run.
type Config struct {
	// Mode selects how the VM reports costs to the profiler: "events"
	// (or "") streams one event per access and iteration; "paths"
	// instruments counted loops with Ball–Larus path counters extended
	// across back edges and decodes totals at loop exit. Where the
	// decode is exact the two modes produce identical profiles; paths
	// mode runs with a fraction of the events-mode overhead.
	Mode string
	// Seed drives the program's rand() builtin (default 1).
	Seed uint64
	// Input feeds the program's readInput() builtin.
	Input []int64
	// SizeStrategy selects array size measurement.
	SizeStrategy SizeStrategy
	// Criterion selects the input equivalence criterion.
	Criterion Criterion
	// GroupStrategy selects the algorithm grouping strategy.
	GroupStrategy GroupStrategy
	// EagerIdentify disables the paper's deferred-identification
	// optimization (ablation; slower on constructions).
	EagerIdentify bool
	// DisableMemo disables the incremental snapshot memo (ablation: every
	// observation re-traverses its O(size) structure — the paper's
	// measured behaviour, which §5 calls to optimize).
	DisableMemo bool
	// SampleEvery keeps every k-th invocation record (0/1 = all); totals
	// stay exact, series thin out — the paper's §3.3 memory optimization.
	SampleEvery int
	// MaxSteps bounds execution (0 = default of 1e9 instructions).
	MaxSteps uint64
	// Pipelined routes events through the batched ring-buffer transport
	// (internal/events/pipeline): the VM produces records and the profiler
	// core consumes them on its own goroutine, with heap-write barriers
	// keeping size measurement deterministic. Profiles are byte-identical
	// to synchronous runs.
	Pipelined bool
	// KeepRaw retains access to the underlying profiler state via Raw().
	// It is always retained currently; the flag is reserved.
	KeepRaw bool
	// Limits bounds the run's events, memory, trace size, and wall-clock
	// time. The zero value imposes none; see Limits for the degradation
	// semantics (limits degrade the profile, they do not fail the run).
	Limits Limits
	// Verify runs the online invariant verifier (internal/verify) as one
	// more pipeline consumer: the event stream is checked for
	// well-formedness while the program runs, and the repetition tree is
	// cross-checked against the stream afterwards. Any violation fails the
	// run with a *verify.Error (fault class: corruption) instead of
	// returning a silently inconsistent profile.
	Verify bool
	// Watchdog is an extra hook composed into the VM watchdog alongside
	// the context and Limits.Deadline checks; a non-nil error halts the VM
	// (a *vm.Halt degrades the run cleanly, anything else fails it). Chaos
	// harnesses inject deterministic mid-frame deadline faults through it.
	// Never serialized.
	Watchdog func() error `json:"-"`
}

// Point is one (input size, algorithmic steps) sample.
type Point struct {
	Size  int
	Steps int64
}

// CostFunction is a fitted empirical cost function.
type CostFunction struct {
	// InputLabel describes the input the function is over (e.g. "Node-
	// based recursive structure").
	InputLabel string
	// Model is the growth term ("n", "n^2", "n log n", ...).
	Model string
	// Coeff and Intercept parameterize cost ≈ Coeff·model + Intercept.
	Coeff     float64
	Intercept float64
	// R2 is the fit's coefficient of determination.
	R2 float64
	// Text renders like the paper's annotations, e.g. "0.25*n^2".
	Text string
	// Points is the series the function was fitted to.
	Points []Point
}

// Algorithm summarizes one algorithm found in the program.
type Algorithm struct {
	// Name is the root repetition's name, e.g. "List.sort/loop1".
	Name string
	// Nodes lists all member repetition names.
	Nodes []string
	// Description is the classification, e.g. "Modification of a
	// Node-based recursive structure".
	Description string
	// DataStructureLess reports an algorithm with no inputs.
	DataStructureLess bool
	// Invocations is the number of root invocations.
	Invocations int
	// TotalSteps is the combined algorithmic step count over all
	// invocations.
	TotalSteps int64
	// Operations breaks the combined costs down by primitive operation
	// (§2.2/§3.3 cost maps): STEP, GET, PUT, LOAD, STORE, NEW, IN, OUT.
	Operations map[string]int64
	// CostFunctions holds one fitted function per input kind (series
	// with at least three distinct sizes).
	CostFunctions []CostFunction
}

// Profile is the result of one profiling run.
type Profile struct {
	// Algorithms, most expensive (by TotalSteps) first.
	Algorithms []Algorithm

	// Stdout and Output are the program's print() and writeOutput()
	// results.
	Stdout []string
	Output []string

	// Instructions is the number of bytecode instructions executed, summed
	// over the main thread and every spawned thread.
	Instructions uint64

	// Threads is the number of VM threads the program spawned (0 for a
	// single-threaded run). Spawned threads contribute "t<tid>:"-prefixed
	// algorithms: their repetition trees are kept per-thread in the trace
	// and merged only at report time.
	Threads int

	// Degraded reports that a resource limit cut the run's fidelity: the
	// profile was built from deterministically sampled invocations, a
	// halted prefix of the run, or a truncated trace. Totals are exact
	// over what executed; series are thinner but still fittable.
	Degraded bool
	// DegradedReasons lists what tripped, in order ("max-events",
	// "max-live-bytes", "deadline", "max-trace-bytes", "truncated-trace",
	// "interrupted").
	DegradedReasons []string

	raw rawProfile
}

type rawProfile struct {
	profiler *core.Profiler
	groups   *group.Result
	classes  map[*group.Algorithm]*classify.AlgorithmClass
	fits     map[*group.Algorithm]map[string]*fit.Fit
	machine  *vm.VM
	// threadEvents is the profiling-event total of all spawned threads'
	// profilers, accumulated at merge time.
	threadEvents uint64
}

// EventCount reports the profiling events consumed across all threads'
// profilers — the number tenant event budgets charge.
func (p *Profile) EventCount() uint64 {
	var n uint64
	if p.raw.profiler != nil {
		n = p.raw.profiler.EventCount()
	}
	return n + p.raw.threadEvents
}

// Raw exposes the underlying analysis objects for advanced use (internal
// types; subject to change).
func (p *Profile) Raw() (*core.Profiler, *group.Result) {
	return p.raw.profiler, p.raw.groups
}

// Tree renders the repetition tree with algorithm annotations (Figure 3).
func (p *Profile) Tree() string {
	return report.RenderTree(p.raw.profiler, p.raw.groups, p.raw.classes, report.TreeOptions{
		Fits: func(alg *group.Algorithm) map[string]*fit.Fit { return p.raw.fits[alg] },
	})
}

// PlotAlgorithm renders an ASCII scatter plot (Figure 1) of the named
// algorithm's series for the given input label ("" = first available).
func (p *Profile) PlotAlgorithm(name, inputLabel string, width, height int) (string, error) {
	for _, alg := range p.raw.groups.Algorithms {
		if p.raw.profiler.NodeName(alg.Root) != name {
			continue
		}
		labels := make([]string, 0, len(alg.Series))
		for l := range alg.Series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		if inputLabel == "" && len(labels) > 0 {
			inputLabel = labels[0]
		}
		pts, ok := alg.Series[inputLabel]
		if !ok {
			return "", fmt.Errorf("algoprof: algorithm %q has no series %q (have %v)", name, inputLabel, labels)
		}
		fpts := make([]fit.Point, len(pts))
		for i, pt := range pts {
			fpts[i] = fit.Point{Size: float64(pt.Size), Cost: float64(pt.Steps)}
		}
		return report.Scatter(fpts, p.raw.fits[alg][inputLabel], width, height), nil
	}
	return "", fmt.Errorf("algoprof: no algorithm rooted at %q", name)
}

// JSON serializes the profile's structured results (algorithms,
// classifications, cost functions with their data points, program
// outputs) for consumption by external tooling.
func (p *Profile) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Algorithms      []Algorithm `json:"algorithms"`
		Stdout          []string    `json:"stdout,omitempty"`
		Output          []string    `json:"output,omitempty"`
		Instructions    uint64      `json:"instructions"`
		Threads         int         `json:"threads,omitempty"`
		Degraded        bool        `json:"degraded,omitempty"`
		DegradedReasons []string    `json:"degraded_reasons,omitempty"`
	}{p.Algorithms, p.Stdout, p.Output, p.Instructions, p.Threads, p.Degraded, p.DegradedReasons}, "", "  ")
}

// Find returns the algorithm rooted at the named repetition.
func (p *Profile) Find(name string) *Algorithm {
	for i := range p.Algorithms {
		if p.Algorithms[i].Name == name {
			return &p.Algorithms[i]
		}
	}
	return nil
}

// Run compiles MJ source, instruments it, executes it, and assembles the
// algorithmic profile.
func Run(src string, cfg Config) (*Profile, error) {
	return RunContext(context.Background(), src, cfg)
}

// RunContext is Run with cooperative cancellation: the VM polls ctx and
// halts within a few thousand instructions of it being done. Cancellation
// returns a *PartialError carrying the best-effort partial profile, unlike
// cfg.Limits, which degrade the profile without failing the run.
func RunContext(ctx context.Context, src string, cfg Config) (*Profile, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return RunProgramContext(ctx, prog, cfg)
}

// RunProgram profiles an already compiled program.
func RunProgram(prog *bytecode.Program, cfg Config) (*Profile, error) {
	return RunProgramContext(context.Background(), prog, cfg)
}

// RunProgramContext is RunProgram with cooperative cancellation (see
// RunContext).
func RunProgramContext(ctx context.Context, prog *bytecode.Program, cfg Config) (*Profile, error) {
	imode, err := instrumentMode(cfg)
	if err != nil {
		return nil, err
	}
	ins, err := instrument.Instrument(prog, imode)
	if err != nil {
		return nil, err
	}

	prof := core.NewProfiler(ins, coreOptions(cfg))

	// Spawned threads each get their own profiler session: their own
	// repetition tree, and their own single-producer ring when the run is
	// pipelined or verified.
	threads := newThreadSessions(ins, cfg, cfg.Pipelined)

	vmCfg := vm.Config{
		Listener:     prof,
		Plan:         ins.Plan,
		NumSites:     ins.NumSites(),
		Seed:         seedOf(cfg),
		Input:        cfg.Input,
		MaxSteps:     cfg.MaxSteps,
		Watchdog:     watchdogFor(ctx, cfg.Limits, time.Now(), cfg.Watchdog),
		SpawnSession: threads.spawnSession,
	}
	var tp *pipeline.Transport
	var chk *verify.Checker
	if cfg.Pipelined || cfg.Verify {
		// The verifier is a raw-tap consumer, so a non-pipelined verified
		// run still routes events through a (synchronous) transport.
		tp = pipeline.New(pipeline.Config{Synchronous: !cfg.Pipelined})
		copts := pipeline.ConsumerOptions{HeapReader: true}
		if !cfg.Pipelined {
			copts.Plan = ins.Plan
		}
		tp.Add("core", prof, copts)
		pr := tp.Producer()
		vmCfg.Listener = pr
		vmCfg.PreWrite = pr.Barrier
		if cfg.Verify {
			chk = verify.NewChecker()
			tp.Add("verify", chk, pipeline.ConsumerOptions{})
			// The heap journal costs nothing to check and a lot to miss:
			// wire it so the verifier sees entity births and stores too.
			vmCfg.Journal = pr
		}
	}
	machine := vm.New(ins.Prog, vmCfg)
	if tp != nil {
		tp.Producer().BindClock(&machine.InstrCount)
		tp.Start()
	}
	extra, runErr := triageRunError(machine.Run())
	if tp != nil {
		if runErr != nil && interrupted(runErr) {
			// The run is being abandoned: drop the buffered tail instead
			// of waiting for the profiler to chew through it.
			tp.Abort()
		} else if cerr := tp.Close(); cerr != nil && runErr == nil {
			runErr = cerr
		}
	}
	if runErr != nil {
		if interrupted(runErr) {
			return nil, salvage(func() *Profile {
				p, _ := finishProfile(prof, cfg, machine, true)
				if p != nil {
					_ = mergeThreadProfiles(threads, p, cfg, true)
				}
				return p
			}, runErr)
		}
		return nil, runErr
	}
	// With the verifier attached, profiler-internal errors surface as
	// typed verify violations instead of the bare internal-error wrap.
	p, err := finishProfile(prof, cfg, machine, chk != nil, extra...)
	if err != nil {
		return nil, err
	}
	if err := mergeThreadProfiles(threads, p, cfg, false); err != nil {
		return nil, err
	}
	if err := runVerify(chk, prof, false, cfg.Mode != ModePaths); err != nil {
		return nil, err
	}
	return p, nil
}

// instrumentMode maps Config.Mode to an instrumentation mode.
func instrumentMode(cfg Config) (instrument.Mode, error) {
	switch cfg.Mode {
	case "", ModeEvents:
		return instrument.Optimized, nil
	case ModePaths:
		return instrument.Paths, nil
	default:
		return 0, fmt.Errorf("algoprof: unknown mode %q (want %q or %q)", cfg.Mode, ModeEvents, ModePaths)
	}
}

// runVerify runs the post-run invariant checks when a checker was
// attached: end-of-stream balance (openOK tolerates the open frames a
// truncated trace legitimately leaves), repetition-tree invariants, and —
// when agree is set — stream-vs-tree agreement. Path mode clears agree:
// counted loops report iterations through decoded counters rather than
// LoopBack events, so the stream legitimately disagrees with the tree
// there (CheckPathDecode covers that gap by cross-checking against an
// events-mode run). Any violation is returned as a *verify.Error.
func runVerify(chk *verify.Checker, prof *core.Profiler, openOK, agree bool) error {
	if chk == nil {
		return nil
	}
	chk.Finish(openOK)
	chk.Add(verify.CheckTree(prof, openOK))
	if agree {
		chk.Add(verify.AgreeStream(chk, prof))
	}
	return chk.Err()
}

// FromProfiler assembles a Profile from a finished core profiler — used by
// RunProgram and by alternative frontends such as the probe API.
func FromProfiler(prof *core.Profiler) *Profile {
	return FromProfilerWith(prof, SharedInput)
}

// FromProfilerWith is FromProfiler with an explicit grouping strategy.
func FromProfilerWith(prof *core.Profiler, strategy GroupStrategy) *Profile {
	groups := group.AnalyzeWith(prof, group.Options{Strategy: group.Strategy(strategy)})
	classes := classify.Classify(prof, groups)
	fits := map[*group.Algorithm]map[string]*fit.Fit{}
	for _, alg := range groups.Algorithms {
		fits[alg] = report.FitSeries(alg)
	}

	p := &Profile{
		raw: rawProfile{
			profiler: prof,
			groups:   groups,
			classes:  classes,
			fits:     fits,
		},
	}

	reg := prof.Registry()
	for _, alg := range groups.Algorithms {
		if alg.Root.Kind == core.KindRoot {
			continue // synthetic program root
		}
		a := Algorithm{
			Name:        prof.NodeName(alg.Root),
			Invocations: alg.Root.Invocations(),
			TotalSteps:  alg.TotalSteps(),
			Operations:  map[string]int64{},
		}
		for _, pt := range alg.Combined {
			for k, v := range pt.Costs {
				if k.Type == "" {
					a.Operations[k.Op.String()] += v
				}
			}
		}
		for _, n := range alg.Nodes {
			a.Nodes = append(a.Nodes, prof.NodeName(n))
		}
		ac := classes[alg]
		a.Description = ac.Describe(func(id int) string { return reg.Input(id).Label() })
		a.DataStructureLess = ac.DataStructureLess()

		labels := make([]string, 0, len(fits[alg]))
		for l := range fits[alg] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, label := range labels {
			f := fits[alg][label]
			cf := CostFunction{
				InputLabel: label,
				Model:      f.Model.String(),
				Coeff:      f.Coeff,
				Intercept:  f.Intercept,
				R2:         f.R2,
				Text:       f.String(),
			}
			for _, pt := range alg.Series[label] {
				cf.Points = append(cf.Points, Point{Size: pt.Size, Steps: pt.Steps})
			}
			a.CostFunctions = append(a.CostFunctions, cf)
		}
		p.Algorithms = append(p.Algorithms, a)
	}
	sort.SliceStable(p.Algorithms, func(i, j int) bool {
		return p.Algorithms[i].TotalSteps > p.Algorithms[j].TotalSteps
	})
	return p
}
