package algoprof

import (
	"context"
	"errors"
	"fmt"
	"time"

	"algoprof/internal/vm"
)

// Limits bounds a profiling run. The zero value imposes no limits. Limits
// degrade rather than abort: when one trips, the profiler switches to
// deterministic invocation sampling (or, for the deadline, halts the VM
// cleanly), the run completes with exit status success, and the resulting
// Profile is marked Degraded with the tripped limits listed — its series
// stay fittable. Only explicit context cancellation turns into an error
// (a *PartialError carrying whatever profile could be salvaged).
type Limits struct {
	// MaxEvents starts degrading after this many profiling events (0 =
	// unlimited). Totals stay exact; invocation series thin out
	// deterministically. Deterministic limits apply identically when the
	// run is replayed from a trace, so degraded runs stay replayable.
	MaxEvents uint64
	// MaxLiveBytes bounds the profiler's approximate live memory for
	// recorded history plus the input registry (0 = unlimited). The
	// sampling interval doubles each time the estimate exceeds the
	// bound, shedding already-recorded history.
	MaxLiveBytes int64
	// MaxTraceBytes caps the trace file size during Record (0 =
	// unlimited; checked at frame boundaries). Capture stops at the cap;
	// the trace stays complete and replayable over the captured prefix.
	MaxTraceBytes int64
	// Deadline bounds the run's wall-clock time (0 = unlimited). On
	// expiry the VM halts cleanly — exit events still fire for every
	// open loop and method — and the partial profile is returned as
	// degraded, not as an error.
	Deadline time.Duration
}

// active reports whether any limit or the context can interrupt the run.
func (l Limits) active(ctx context.Context) bool {
	return ctx.Done() != nil || l.Deadline > 0
}

// PartialError reports a run that stopped before completion — the context
// was cancelled or the VM/workload panicked — together with whatever
// profile could be salvaged from the events consumed so far.
type PartialError struct {
	// Profile is the best-effort partial profile; nil when salvage
	// itself failed. Its Degraded flag is set and its numbers cover only
	// the executed prefix of the run.
	Profile *Profile
	// Err is the cause: context.Canceled, context.DeadlineExceeded, or a
	// *vm.PanicError.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("algoprof: run stopped early: %v", e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// watchdogFor builds the VM watchdog enforcing ctx, the wall-clock
// deadline, and an optional extra hook (Config.Watchdog). Returns nil when
// none can fire, keeping the interpreter's hot loop free of the poll.
func watchdogFor(ctx context.Context, lim Limits, start time.Time, extra func() error) func() error {
	if !lim.active(ctx) && extra == nil {
		return nil
	}
	var deadline time.Time
	if lim.Deadline > 0 {
		deadline = start.Add(lim.Deadline)
	}
	return func() error {
		if extra != nil {
			if err := extra(); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return &vm.Halt{Reason: "deadline"}
		}
		return nil
	}
}

// triageRunError splits a VM run error into graceful degradation and real
// failure: a watchdog *vm.Halt means the run was cut short on purpose and
// its balanced partial stream should finish as a degraded profile (the
// halt reason becomes a degraded-reason); anything else still stops the
// run.
func triageRunError(runErr error) (reasons []string, err error) {
	if runErr == nil {
		return nil, nil
	}
	var halt *vm.Halt
	if errors.As(runErr, &halt) {
		return []string{halt.Reason}, nil
	}
	return nil, runErr
}

// interrupted reports whether err is a cancellation or contained panic —
// the causes that salvage a partial profile instead of failing outright.
func interrupted(err error) bool {
	var pe *vm.PanicError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &pe)
}

// salvage wraps cause in a *PartialError carrying build's best-effort
// partial profile. Finalizing a half-built repetition tree is inherently
// risky — the event stream may be unbalanced or a listener may have
// panicked mid-update — so a panic during salvage yields a nil Profile
// rather than masking cause.
func salvage(build func() *Profile, cause error) error {
	pe := &PartialError{Err: cause}
	func() {
		defer func() { recover() }()
		if p := build(); p != nil {
			p.Degraded = true
			p.DegradedReasons = append(p.DegradedReasons, "interrupted")
			pe.Profile = p
		}
	}()
	return pe
}
