package algoprof_test

import (
	"bytes"
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
)

// busySrc runs long enough to guarantee several watchdog polls (the VM
// polls every few thousand instructions), so deadline and cancellation
// tests trip deterministically.
const busySrc = `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 200000; i++) { s = s + 1; }
    check(s == 200000);
  }
}`

// sweepSrc is quickstartSrc with a longer harness sweep (64 sizes), so
// that after degradation thins invocations to every 16th, each loop still
// keeps several points to fit.
const sweepSrc = `
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    for (int size = 2; size <= 128; size = size + 2) {
      Node head = build(size);
      int n = count(head);
      check(n == size);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node(rand(100));
      x.next = head;
      head = x;
    }
    return head;
  }
  static int count(Node head) {
    int n = 0;
    Node cur = head;
    while (cur != null) { n++; cur = cur.next; }
    return n;
  }
}`

// TestMaxEventsDegrades is the issue's acceptance criterion: a run that
// trips -max-events completes successfully with a degraded, still
// fittable profile, and its cost totals stay exact.
func TestMaxEventsDegrades(t *testing.T) {
	full, err := algoprof.Run(sweepSrc, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := algoprof.Run(sweepSrc, algoprof.Config{
		Limits: algoprof.Limits{MaxEvents: 1000},
	})
	if err != nil {
		t.Fatalf("limited run failed instead of degrading: %v", err)
	}
	if !limited.Degraded || !slices.Contains(limited.DegradedReasons, "max-events") {
		t.Fatalf("Degraded = %v, reasons = %v; want max-events", limited.Degraded, limited.DegradedReasons)
	}
	if full.Degraded {
		t.Fatalf("unlimited run marked degraded: %v", full.DegradedReasons)
	}
	if len(limited.Algorithms) == 0 {
		t.Fatal("degraded profile has no algorithms")
	}
	for _, name := range []string{"Main.build/loop1", "Main.count/loop1"} {
		lim, fl := limited.Find(name), full.Find(name)
		if lim == nil || fl == nil {
			t.Fatalf("algorithm %s missing (limited %v, full %v)", name, lim != nil, fl != nil)
		}
		if lim.TotalSteps != fl.TotalSteps {
			t.Errorf("%s total steps %d under limits, want exact %d", name, lim.TotalSteps, fl.TotalSteps)
		}
		if len(lim.CostFunctions) == 0 {
			t.Errorf("%s lost its cost functions; degraded profiles must stay fittable", name)
		}
		for _, cf := range lim.CostFunctions {
			if len(cf.Points) == 0 {
				t.Errorf("%s cost function %q has no points", name, cf.Text)
			}
		}
	}
}

// TestMaxLiveBytesDegrades checks the memory bound degrades the same way:
// success, flagged, exact totals.
func TestMaxLiveBytesDegrades(t *testing.T) {
	prof, err := algoprof.Run(quickstartSrc, algoprof.Config{
		Limits: algoprof.Limits{MaxLiveBytes: 1},
	})
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	if !prof.Degraded || !slices.Contains(prof.DegradedReasons, "max-live-bytes") {
		t.Fatalf("Degraded = %v, reasons = %v; want max-live-bytes", prof.Degraded, prof.DegradedReasons)
	}
	if len(prof.Algorithms) == 0 {
		t.Fatal("degraded profile has no algorithms")
	}
}

// TestDeadlineDegrades: an expired wall-clock budget halts the VM cleanly
// — every open loop and method still emits its exit — so the run ends as
// a degraded profile, not an error. The non-tolerant finish path doubles
// as the balance check: an unbalanced stream would surface as an internal
// profiling error here.
func TestDeadlineDegrades(t *testing.T) {
	prof, err := algoprof.Run(busySrc, algoprof.Config{
		Limits: algoprof.Limits{Deadline: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("deadline produced error, want degraded profile: %v", err)
	}
	if !prof.Degraded || !slices.Contains(prof.DegradedReasons, "deadline") {
		t.Fatalf("Degraded = %v, reasons = %v; want deadline", prof.Degraded, prof.DegradedReasons)
	}
	if prof.Instructions == 0 {
		t.Error("degraded profile lost its instruction count")
	}
}

// TestContextCancelPartialError: explicit cancellation is a user abort,
// not a planned bound — it returns a *PartialError carrying whatever
// profile could be salvaged.
func TestContextCancelPartialError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prof, err := algoprof.RunContext(ctx, busySrc, algoprof.Config{})
	if err == nil {
		t.Fatal("cancelled run succeeded, want *PartialError")
	}
	if prof != nil {
		t.Errorf("non-nil profile alongside error")
	}
	var pe *algoprof.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PartialError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("PartialError does not unwrap to context.Canceled: %v", err)
	}
	if pe.Profile == nil {
		t.Fatal("no salvaged profile in PartialError")
	}
	if !pe.Profile.Degraded || !slices.Contains(pe.Profile.DegradedReasons, "interrupted") {
		t.Errorf("salvaged profile reasons = %v, want interrupted", pe.Profile.DegradedReasons)
	}
}

// TestDegradedReplayEquality: deterministic limits apply identically
// during replay, so a degraded recording replays to the identical
// profile — the trace subsystem's correctness contract extends to
// degraded runs.
func TestDegradedReplayEquality(t *testing.T) {
	cfg := algoprof.Config{Limits: algoprof.Limits{MaxEvents: 1000}}
	var buf bytes.Buffer
	live, err := algoprof.Record(quickstartSrc, cfg, &buf, trace.WriterOptions{})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if !live.Degraded {
		t.Fatal("recording did not degrade; raise the workload or lower MaxEvents")
	}
	r, err := trace.NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	prog, err := compiler.CompileSource(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := algoprof.ReplayProgram(prog, cfg, r)
	if err != nil {
		t.Fatalf("ReplayProgram: %v", err)
	}
	// Program outputs travel in the run store's manifest, not the event
	// stream; copy them so the JSON comparison covers everything else.
	replayed.Stdout = live.Stdout
	replayed.Output = live.Output
	liveJSON, err := live.JSON()
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := replayed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Errorf("degraded replay differs from live run\nlive:\n%s\nreplayed:\n%s", liveJSON, replayJSON)
	}
}

// TestMaxTraceBytesKeepsReplayableTrace: the trace-size cap stops capture
// at a frame boundary but still closes the file with its index and
// trailer, so the capped trace opens as a complete (non-recovered) trace
// and the profile reports the cap.
func TestMaxTraceBytesKeepsReplayableTrace(t *testing.T) {
	var buf bytes.Buffer
	prof, err := algoprof.Record(quickstartSrc,
		algoprof.Config{Limits: algoprof.Limits{MaxTraceBytes: 512}},
		&buf, trace.WriterOptions{FrameSize: 16})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if !prof.Degraded || !slices.Contains(prof.DegradedReasons, "max-trace-bytes") {
		t.Fatalf("reasons = %v, want max-trace-bytes", prof.DegradedReasons)
	}
	r, err := trace.NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("capped trace does not open: %v", err)
	}
	if r.Stats().Truncated {
		t.Error("capped trace opened via recovery; want a complete trace")
	}
	var n int
	if err := r.Replay(func(*pipeline.Record) { n++ }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n == 0 {
		t.Error("capped trace replayed no records")
	}
}
