package algoprof_test

import (
	"fmt"
	"io"
	"regexp"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/verify"
	"algoprof/internal/workloads"
)

// instrLine matches the profile JSON's executed-instruction count. The two
// modes execute different instruction streams by construction (path-mode
// superinstructions replace probe sequences), so this one field is
// normalized before the byte comparison; everything decoded — costs,
// sizes, series, classifications, fits — must match exactly.
var instrLine = regexp.MustCompile(`"instructions": \d+`)

// equivalenceCorpus lists programs on which path-counter decode is exact:
// every counted-loop access site resolves to a single input for the whole
// invocation, so the decoded profile must be byte-identical to the
// events-mode one.
var equivalenceCorpus = []struct {
	name string
	src  string
}{
	{"running-random", workloads.RunningExample(workloads.Random, 48, 6, 2)},
	{"running-sorted", workloads.RunningExample(workloads.Sorted, 48, 6, 2)},
	{"running-reversed", workloads.RunningExample(workloads.Reversed, 48, 6, 2)},
	{"running-checked", workloads.RunningExampleChecked(workloads.Random, 36, 6, 2)},
	{"running-scanned", workloads.RunningExampleScanned(workloads.Random, 36, 6, 2, 2)},
	{"functional-sort", workloads.FunctionalSort(workloads.Random, 36, 6, 2)},
	{"arraylist-naive", workloads.ArrayListGrow(true, 48, 6, 2)},
	{"arraylist-ideal", workloads.ArrayListGrow(false, 48, 6, 2)},
	{"listing3", workloads.Listing3},
	{"threaded", workloads.Threaded(2, 24)},
	{"listing4", workloads.Listing4(40)},
	{"listing5", workloads.Listing5},
}

// profilePair runs one program in both modes under otherwise identical
// configs and returns the rendered trees and JSON profiles.
func profilePair(t *testing.T, src string, cfg algoprof.Config) (evTree, ptTree string, evJSON, ptJSON []byte) {
	t.Helper()
	cfg.Mode = algoprof.ModeEvents
	ev, err := algoprof.Run(src, cfg)
	if err != nil {
		t.Fatalf("events mode: %v", err)
	}
	cfg.Mode = algoprof.ModePaths
	pt, err := algoprof.Run(src, cfg)
	if err != nil {
		t.Fatalf("paths mode: %v", err)
	}
	evJSON, err = ev.JSON()
	if err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	ptJSON, err = pt.JSON()
	if err != nil {
		t.Fatalf("paths JSON: %v", err)
	}
	evJSON = instrLine.ReplaceAll(evJSON, []byte(`"instructions": X`))
	ptJSON = instrLine.ReplaceAll(ptJSON, []byte(`"instructions": X`))
	return ev.Tree(), pt.Tree(), evJSON, ptJSON
}

// TestPathModeEquivalence is the exactness gate the issue requires: on
// every corpus program where decode is exact, the paths-mode profile —
// tree rendering and serialized JSON — must be byte-identical to the
// events-mode profile.
func TestPathModeEquivalence(t *testing.T) {
	for _, tc := range equivalenceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			evTree, ptTree, evJSON, ptJSON := profilePair(t, tc.src, algoprof.Config{})
			if evTree != ptTree {
				t.Errorf("trees differ\n--- events ---\n%s\n--- paths ---\n%s", evTree, ptTree)
			}
			if string(evJSON) != string(ptJSON) {
				t.Errorf("JSON differs\n--- events ---\n%s\n--- paths ---\n%s", evJSON, ptJSON)
			}
		})
	}
}

// TestPathModeEquivalenceEager repeats the gate under the eager-identify
// ablation: with no pending groups in play at all, site resolutions bind
// inputs immediately and the decode must still match.
func TestPathModeEquivalenceEager(t *testing.T) {
	for _, tc := range equivalenceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			evTree, ptTree, _, _ := profilePair(t, tc.src, algoprof.Config{EagerIdentify: true})
			if evTree != ptTree {
				t.Errorf("trees differ\n--- events ---\n%s\n--- paths ---\n%s", evTree, ptTree)
			}
		})
	}
}

// inexactSrc walks two distinct lists through the same access sites in a
// single loop invocation (the cursor hops from list a to list b midway).
// Events mode splits the access costs across both inputs; paths mode
// resolves each site once per invocation, so decode attributes all counts
// to the first-touched input. This is the documented tolerance: per-input
// attribution may shift, totals never do.
const inexactSrc = `
class Node { int value; Node next; }
class Main {
  public static void main() {
    Node a = build(12);
    Node b = build(20);
    int r = 0;
    int hopped = 0;
    Node cur = a;
    while (cur != null) {
      r = r + cur.value;
      cur = cur.next;
      if (cur == null) {
        if (hopped == 0) { hopped = 1; cur = b; }
      }
    }
    print(r);
  }
  static Node build(int n) {
    Node head = null;
    for (int i = 0; i < n; i++) {
      Node x = new Node();
      x.value = i;
      x.next = head;
      head = x;
    }
    return head;
  }
}`

// TestPathModeInexactTolerance pins the documented behaviour on a program
// outside the exactness envelope: the run must still succeed, verify
// cleanly, produce the same program output, and agree with events mode on
// the total step count (only per-input access attribution may shift).
func TestPathModeInexactTolerance(t *testing.T) {
	ev, err := algoprof.Run(inexactSrc, algoprof.Config{Verify: true})
	if err != nil {
		t.Fatalf("events mode: %v", err)
	}
	pt, err := algoprof.Run(inexactSrc, algoprof.Config{Mode: algoprof.ModePaths, Verify: true})
	if err != nil {
		t.Fatalf("paths mode: %v", err)
	}
	if fmt.Sprint(ev.Stdout) != fmt.Sprint(pt.Stdout) {
		t.Errorf("stdout differs: events %v, paths %v", ev.Stdout, pt.Stdout)
	}
	var evSteps, ptSteps int64
	for _, a := range ev.Algorithms {
		evSteps += a.TotalSteps
	}
	for _, a := range pt.Algorithms {
		ptSteps += a.TotalSteps
	}
	if evSteps != ptSteps {
		t.Errorf("total steps differ: events %d, paths %d", evSteps, ptSteps)
	}
}

// TestCheckPathDecode runs the decoded-vs-exact cross-check over the
// corpus: node-by-node invocation accounting and cost totals must agree
// between the two modes, and on the inexact program the per-op sums must
// still agree even though per-input attribution shifts.
func TestCheckPathDecode(t *testing.T) {
	for _, tc := range equivalenceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			ev, err := algoprof.Run(tc.src, algoprof.Config{})
			if err != nil {
				t.Fatalf("events mode: %v", err)
			}
			pt, err := algoprof.Run(tc.src, algoprof.Config{Mode: algoprof.ModePaths})
			if err != nil {
				t.Fatalf("paths mode: %v", err)
			}
			evProf, _ := ev.Raw()
			ptProf, _ := pt.Raw()
			for _, v := range verify.CheckPathDecode(evProf, ptProf) {
				t.Errorf("%s", v)
			}
		})
	}
	t.Run("inexact-sums", func(t *testing.T) {
		ev, err := algoprof.Run(inexactSrc, algoprof.Config{})
		if err != nil {
			t.Fatalf("events mode: %v", err)
		}
		pt, err := algoprof.Run(inexactSrc, algoprof.Config{Mode: algoprof.ModePaths})
		if err != nil {
			t.Fatalf("paths mode: %v", err)
		}
		evProf, _ := ev.Raw()
		ptProf, _ := pt.Raw()
		evSums, ptSums := verify.SumByOp(evProf), verify.SumByOp(ptProf)
		for op, v := range evSums {
			if got := ptSums[op]; got != v {
				t.Errorf("op %s: events total %d, decoded total %d", op, v, got)
			}
		}
	})
}

// TestPathModeVerified runs the corpus through the online verifier in
// paths mode (tree invariants still hold; stream agreement is gated off
// for counted loops) and pipelined, exercising the SiteTouch drain path.
func TestPathModeVerified(t *testing.T) {
	for _, tc := range equivalenceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			evTree, ptTree, _, _ := profilePair(t, tc.src,
				algoprof.Config{Verify: true, Pipelined: true})
			if evTree != ptTree {
				t.Errorf("trees differ\n--- events ---\n%s\n--- paths ---\n%s", evTree, ptTree)
			}
		})
	}
}

// TestPathModeRejectsRecording pins the explicit error paths: traces carry
// the exact event stream, so recording and replay refuse paths mode.
func TestPathModeRejectsRecording(t *testing.T) {
	_, err := algoprof.Record(workloads.Listing3, algoprof.Config{Mode: algoprof.ModePaths}, io.Discard, trace.WriterOptions{})
	if err == nil {
		t.Fatal("Record accepted paths mode")
	}
}
