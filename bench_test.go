// Benchmarks regenerating every table and figure of the AlgoProf paper
// (PLDI'12). Each benchmark runs the full pipeline for its experiment —
// compile, instrument, execute under the profiler, group, classify, fit —
// validates the paper's qualitative result (shape of the cost function,
// classification, grouping), and reports the headline quantities as
// benchmark metrics.
//
// Run with:
//
//	go test -bench=. -benchmem
package algoprof_test

import (
	"math"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/experiments"
	"algoprof/internal/workloads"
)

var sweep = experiments.DefaultSweep

// BenchmarkFigure1 regenerates the three panels of Figure 1: the cost
// functions of insertion sort on random (≈0.25n²), sorted (≈n) and
// reversed (≈0.5n²) inputs.
func BenchmarkFigure1(b *testing.B) {
	cases := []struct {
		order     workloads.Order
		wantModel string
		wantCoeff float64
		tol       float64
	}{
		{workloads.Random, "n^2", 0.25, 0.08},
		{workloads.Sorted, "n", 1.0, 0.05},
		{workloads.Reversed, "n^2", 0.5, 0.05},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.order.String(), func(b *testing.B) {
			var res *experiments.Figure1Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = experiments.Figure1(tc.order, sweep)
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.Model != tc.wantModel {
				b.Fatalf("model = %s, want %s", res.Model, tc.wantModel)
			}
			if math.Abs(res.Coeff-tc.wantCoeff) > tc.tol {
				b.Fatalf("coefficient = %.3f, want %.2f±%.2f", res.Coeff, tc.wantCoeff, tc.tol)
			}
			b.ReportMetric(res.Coeff, "coeff")
			b.ReportMetric(res.R2, "R2")
			b.ReportMetric(float64(len(res.Points)), "runs")
		})
	}
}

// BenchmarkFigure2 regenerates the traditional CCT baseline profile:
// List.sort is the hottest method by exclusive cost.
func BenchmarkFigure2(b *testing.B) {
	var res *experiments.Figure2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure2(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.HottestExclusive != "List.sort" {
		b.Fatalf("hottest = %s, want List.sort", res.HottestExclusive)
	}
}

// BenchmarkFigure3 regenerates the annotated repetition tree: five loops,
// the sort algorithm a quadratic modification, the construct loop a
// construction.
func BenchmarkFigure3(b *testing.B) {
	var res *experiments.Figure3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure3(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.LoopCount != 5 {
		b.Fatalf("loop count = %d, want 5", res.LoopCount)
	}
	if res.SortModel != "n^2" {
		b.Fatalf("sort model = %s, want n^2", res.SortModel)
	}
	b.ReportMetric(res.SortCoeff, "sort-coeff")
}

// BenchmarkTable1 regenerates the 18-row data-structure study and
// validates every I/S/G verdict.
func BenchmarkTable1(b *testing.B) {
	var outcomes []experiments.Table1Outcome
	var err error
	for i := 0; i < b.N; i++ {
		outcomes, err = experiments.Table1(24, sweep.Seed)
		if err != nil {
			b.Fatal(err)
		}
	}
	okCount := 0
	for _, o := range outcomes {
		if o.Result.OK() {
			okCount++
		} else {
			b.Errorf("%s: I=%v S=%v G=%v", o.Row.Name(),
				o.Result.InputsOK, o.Result.SizeOK, o.Result.GroupOK)
		}
	}
	b.ReportMetric(float64(okCount), "rows-ok")
}

// BenchmarkFigure4and5 regenerates the array-growth case study: append and
// grow group into one algorithm (Figure 4), naive growth is quadratic and
// doubling is linear (Figure 5).
func BenchmarkFigure4and5(b *testing.B) {
	var res *experiments.Figure45Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure45(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !res.Grouped {
		b.Fatal("append+grow not grouped")
	}
	if res.NaiveModel != "n^2" {
		b.Fatalf("naive model = %s, want n^2", res.NaiveModel)
	}
	if res.IdealModel != "n" && res.IdealModel != "n log n" {
		b.Fatalf("ideal model = %s, want linear-ish", res.IdealModel)
	}
	b.ReportMetric(res.NaiveCoeff, "naive-coeff")
	b.ReportMetric(res.IdealCoeff, "ideal-coeff")
}

// BenchmarkParadigm regenerates §4.3: the functional sort shows the same
// repetition structure and total cost growth as the imperative one.
func BenchmarkParadigm(b *testing.B) {
	var res *experiments.ParadigmResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Paradigm(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !res.NestedRecursions {
		b.Fatal("functional sort lost its nested repetition structure")
	}
	ratio := float64(res.FunctionalTotalSteps) / float64(res.ImperativeTotalSteps)
	if ratio < 0.5 || ratio > 2 {
		b.Fatalf("total-step ratio %.2f out of range", ratio)
	}
	b.ReportMetric(ratio, "fun/imp-steps")
}

// BenchmarkOverhead regenerates the §5 overhead observation: profiling
// multiplies execution cost.
func BenchmarkOverhead(b *testing.B) {
	var res *experiments.OverheadResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Overhead(sweep, func() int64 { return time.Now().UnixNano() })
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Slowdown() < 1 {
		b.Fatalf("slowdown %.2f", res.Slowdown())
	}
	b.ReportMetric(res.Slowdown(), "slowdown-x")
	b.ReportMetric(float64(res.ProfiledInstrs)/float64(res.PlainInstrs), "instr-x")
}

// BenchmarkGoldsmith regenerates the FSE'07 baseline comparison: the
// basic-block profiler finds the quadratic block but needs manual input
// sizes for every run.
func BenchmarkGoldsmith(b *testing.B) {
	var res *experiments.GoldsmithResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Goldsmith(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.TopModel != "n^2" {
		b.Fatalf("top model = %s", res.TopModel)
	}
	b.ReportMetric(float64(res.ManualRuns), "manual-annotations")
}

// BenchmarkAblationSizeStrategy compares the two array size strategies of
// §3.4 on the partially used array of Listing 4.
func BenchmarkAblationSizeStrategy(b *testing.B) {
	var res *experiments.AblationSizeStrategyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationSizeStrategy()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.CapacitySize != 1000 || res.UniqueSize != 10 {
		b.Fatalf("sizes %d/%d, want 1000/10", res.CapacitySize, res.UniqueSize)
	}
	b.ReportMetric(float64(res.CapacitySize), "capacity")
	b.ReportMetric(float64(res.UniqueSize), "unique")
}

// BenchmarkAblationIdentify compares deferred identification (the paper's
// RemeasureInputs optimization) against eager per-access snapshots.
func BenchmarkAblationIdentify(b *testing.B) {
	modes := []struct {
		name  string
		eager bool
	}{{"deferred", false}, {"eager", true}}
	src := workloads.Listing4(400)
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algoprof.Run(src, algoprof.Config{EagerIdentify: m.eager}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the raw end-to-end profiling pipeline on the
// running example, for tracking the reproduction's own performance.
func BenchmarkPipeline(b *testing.B) {
	src := workloads.RunningExample(workloads.Random, 48, 6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := algoprof.Run(src, algoprof.Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossover regenerates the extension study: insertion sort vs
// merge sort cost functions and their crossover point.
func BenchmarkCrossover(b *testing.B) {
	var res *experiments.CrossoverResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Crossover(sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.InsertionModel != "n^2" {
		b.Fatalf("insertion model %s", res.InsertionModel)
	}
	if res.MergeAtMax >= res.InsertionAtMax {
		b.Fatal("merge sort must win at the top of the sweep")
	}
	b.ReportMetric(float64(res.CrossoverN), "crossover-n")
	b.ReportMetric(res.InsertionCoeff, "insertion-coeff")
	b.ReportMetric(res.MergeCoeff, "merge-coeff")
}

// BenchmarkAblationSampling measures the §3.3 sampling optimization:
// memory per profiled run with full histories versus every-8th sampling,
// on a workload dominated by invocation records (many small repetitions).
func BenchmarkAblationSampling(b *testing.B) {
	src := `
class Main {
  static void work(int n) {
    for (int i = 0; i < n; i++) { }
  }
  public static void main() {
    for (int r = 0; r < 30000; r++) { work(3); }
  }
}`
	for _, tc := range []struct {
		name  string
		every int
	}{{"keep-all", 0}, {"sample-8", 8}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prof, err := algoprof.Run(src, algoprof.Config{Seed: 1, SampleEvery: tc.every})
				if err != nil {
					b.Fatal(err)
				}
				_ = prof
			}
		})
	}
}

// BenchmarkAblationCriteria compares the §2.4 equivalence criteria on the
// running example: the paper's SomeElements yields one input per list;
// AllElements fragments evolving structures; SameType collapses them all.
func BenchmarkAblationCriteria(b *testing.B) {
	src := workloads.RunningExample(workloads.Random, 32, 4, 2)
	for _, tc := range []struct {
		name string
		crit algoprof.Criterion
	}{
		{"some-elements", algoprof.SomeElements},
		{"all-elements", algoprof.AllElements},
		{"same-type", algoprof.SameType},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var inputs int
			for i := 0; i < b.N; i++ {
				prof, err := algoprof.Run(src, algoprof.Config{Seed: 1, Criterion: tc.crit})
				if err != nil {
					b.Fatal(err)
				}
				p, _ := prof.Raw()
				inputs = len(p.Registry().CanonicalIDs())
			}
			b.ReportMetric(float64(inputs), "inputs")
		})
	}
}
