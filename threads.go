package algoprof

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"algoprof/internal/core"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/instrument"
	"algoprof/internal/trace"
	"algoprof/internal/verify"
	"algoprof/internal/vm"
)

// ThreadTraceSink opens one trace destination per spawned VM thread.
// Record-mode entry points call it from the spawning thread's goroutine
// the moment the thread is created, so implementations must be safe for
// concurrent calls. The returned writer is closed on the thread's own
// goroutine after its trace writer flushes.
type ThreadTraceSink func(tid int) (io.WriteCloser, error)

// threadSessions fabricates one profiler session per spawned VM thread
// and keeps them registered for report-time merging. Each thread gets
// its own core profiler (its own repetition tree and snapshot registry)
// and, when the run is pipelined, verified, or recorded, its own
// single-producer transport — the SPSC rings stay single-producer
// because no ring is ever shared between threads. The per-thread trees
// are merged into the main profile only after every thread has
// terminated, with algorithm names prefixed "t<tid>:".
type threadSessions struct {
	ins       *instrument.Instrumented
	cfg       Config
	pipelined bool             // spin per-thread consumer goroutines
	sink      ThreadTraceSink  // non-nil in record mode
	topts     trace.WriterOptions

	mu       sync.Mutex
	sessions []*threadSession
}

// threadSession is the profiling state of one spawned thread — built
// live by spawnSession, or synthesized by threaded replay with one
// session per recorded thread trace.
type threadSession struct {
	tid   int
	prof  *core.Profiler
	chk   *verify.Checker
	tw    *trace.Writer
	clock *uint64 // the thread's own instruction counter, bound before start
	err   error   // session infrastructure failure (e.g. sink open), surfaced at merge
	// openOK tolerates this thread's unbalanced stream (its trace was
	// truncated); extraReasons are appended, prefixed, to the profile's
	// degradation reasons. Both are set only by replay.
	openOK       bool
	extraReasons []string
}

func newThreadSessions(ins *instrument.Instrumented, cfg Config, pipelined bool) *threadSessions {
	return &threadSessions{ins: ins, cfg: cfg, pipelined: pipelined}
}

// spawnSession implements vm.Config.SpawnSession. It is called from the
// spawning thread's goroutine, so registration is mutex-protected; the
// session it returns is used only by the new thread's goroutine.
func (ts *threadSessions) spawnSession(tid int) *vm.ThreadSession {
	s := &threadSession{tid: tid, prof: core.NewProfiler(ts.ins, coreOptions(ts.cfg))}
	ts.mu.Lock()
	ts.sessions = append(ts.sessions, s)
	ts.mu.Unlock()

	if !ts.pipelined && !ts.cfg.Verify && ts.sink == nil {
		// Direct wiring: the thread's profiler is its listener.
		return &vm.ThreadSession{
			Listener: s.prof,
			Plan:     ts.ins.Plan,
			NumSites: ts.ins.NumSites(),
		}
	}

	tp := pipeline.New(pipeline.Config{Synchronous: !ts.pipelined})
	copts := pipeline.ConsumerOptions{HeapReader: true}
	if !ts.pipelined {
		copts.Plan = ts.ins.Plan
	}
	tp.Add("core", s.prof, copts)
	var wc io.WriteCloser
	if ts.sink != nil {
		w, err := ts.sink(tid)
		if err != nil {
			// SpawnSession cannot fail the spawn; remember the error and
			// surface it deterministically when the report is merged. The
			// thread still profiles — only its trace is lost.
			s.err = fmt.Errorf("algoprof: thread %d trace sink: %w", tid, err)
		} else {
			wc = w
			s.tw = trace.NewWriter(w, ts.topts)
			tp.Add("trace", s.tw, pipeline.ConsumerOptions{})
		}
	}
	if ts.cfg.Verify {
		s.chk = verify.NewChecker()
		tp.Add("verify", s.chk, pipeline.ConsumerOptions{})
	}
	pr := tp.Producer()
	sess := &vm.ThreadSession{
		Listener: pr,
		Plan:     ts.ins.Plan,
		PreWrite: pr.Barrier,
		NumSites: ts.ins.NumSites(),
		BindClock: func(c *uint64) {
			s.clock = c
			pr.BindClock(c)
			tp.Start()
		},
		Close: func() error {
			// Runs on the thread's goroutine after it terminates: drain the
			// thread's transport, stamp and seal its trace.
			err := tp.Close()
			if s.tw != nil {
				if s.clock != nil {
					s.tw.SetInstructions(*s.clock)
				}
				if terr := s.tw.Close(); err == nil {
					err = terr
				}
			}
			if wc != nil {
				if cerr := wc.Close(); err == nil {
					err = cerr
				}
			}
			return err
		},
	}
	if ts.cfg.Verify || s.tw != nil {
		// The heap journal feeds the verifier's shadow heap and the trace's
		// replayable entity records.
		sess.Journal = pr
	}
	return sess
}

// sorted snapshots the registered sessions in thread-id order — the
// deterministic merge order, independent of goroutine scheduling.
func (ts *threadSessions) sorted() []*threadSession {
	ts.mu.Lock()
	out := append([]*threadSession(nil), ts.sessions...)
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].tid < out[j].tid })
	return out
}

// empty reports whether no thread was ever spawned.
func (ts *threadSessions) empty() bool {
	if ts == nil {
		return true
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.sessions) == 0
}

// mergeInto folds every per-thread repetition tree into p: each thread's
// profiler is finished and analyzed independently (the per-thread trees
// stay separate — input-size attribution never mixes threads), its
// algorithms join p.Algorithms under "t<tid>:" names, and the combined
// list is re-sorted by cost. Called only after the VM's Run returned,
// which guarantees every thread has terminated and its session closed.
// With tolerant set (salvage paths), per-thread errors degrade instead
// of failing.
func mergeThreadProfiles(ts *threadSessions, p *Profile, cfg Config, tolerant bool) error {
	if ts.empty() {
		return nil
	}
	sessions := ts.sorted()
	for _, s := range sessions {
		lenient := tolerant || s.openOK
		if s.err != nil {
			if !tolerant {
				return s.err
			}
			p.DegradedReasons = append(p.DegradedReasons, fmt.Sprintf("t%d:trace-lost", s.tid))
		}
		s.prof.Finish()
		if errs := s.prof.Errors(); len(errs) > 0 && s.chk == nil && !lenient {
			return fmt.Errorf("algoprof: internal profiling error (thread %d): %w", s.tid, errs[0])
		}
		tp := FromProfilerWith(s.prof, cfg.GroupStrategy)
		prefix := fmt.Sprintf("t%d:", s.tid)
		for _, a := range tp.Algorithms {
			a.Name = prefix + a.Name
			nodes := make([]string, len(a.Nodes))
			for i, n := range a.Nodes {
				nodes[i] = prefix + n
			}
			a.Nodes = nodes
			p.Algorithms = append(p.Algorithms, a)
		}
		for _, r := range s.prof.DegradedReasons() {
			p.DegradedReasons = append(p.DegradedReasons, prefix+r)
		}
		for _, r := range s.extraReasons {
			p.DegradedReasons = append(p.DegradedReasons, prefix+r)
		}
		p.raw.threadEvents += s.prof.EventCount()
		if err := runVerify(s.chk, s.prof, lenient, cfg.Mode != ModePaths); err != nil && !tolerant {
			return err
		}
	}
	p.Threads = len(sessions)
	sort.SliceStable(p.Algorithms, func(i, j int) bool {
		return p.Algorithms[i].TotalSteps > p.Algorithms[j].TotalSteps
	})
	p.Degraded = p.Degraded || len(p.DegradedReasons) > 0
	return nil
}
