package algoprof_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// TestThreadedRunTransportEquivalence is the tentpole's determinism gate:
// a program that spawns VM threads must produce the byte-identical
// profile whether the per-thread sessions are wired directly, pipelined
// over per-thread SPSC rings, verified, or both — scheduling may vary,
// the report may not. Run under -race this also exercises ≥2 concurrent
// per-thread producers.
func TestThreadedRunTransportEquivalence(t *testing.T) {
	src := workloads.Threaded(2, 20)
	var base []byte
	for _, tc := range []struct {
		name string
		cfg  algoprof.Config
	}{
		{"direct", algoprof.Config{}},
		{"pipelined", algoprof.Config{Pipelined: true}},
		{"verified", algoprof.Config{Verify: true}},
		{"pipelined-verified", algoprof.Config{Pipelined: true, Verify: true}},
	} {
		prof, err := algoprof.Run(src, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if prof.Threads != 2 {
			t.Fatalf("%s: Threads = %d, want 2", tc.name, prof.Threads)
		}
		if prof.Degraded {
			t.Fatalf("%s: degraded: %v", tc.name, prof.DegradedReasons)
		}
		data, err := prof.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = data
			continue
		}
		if !bytes.Equal(base, data) {
			t.Errorf("%s profile differs from direct wiring\ndirect:\n%s\n%s:\n%s", tc.name, base, tc.name, data)
		}
	}
}

// TestThreadedAttribution pins the merged report's shape: per-thread
// algorithms appear under "t<tid>:" names, both threads contribute, and
// the instruction count sums over all threads.
func TestThreadedAttribution(t *testing.T) {
	prof, err := algoprof.Run(workloads.Threaded(2, 20), algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	perThread := map[string]int{}
	for _, a := range prof.Algorithms {
		if i := strings.Index(a.Name, ":"); i > 0 && a.Name[0] == 't' {
			perThread[a.Name[:i]]++
		}
	}
	if len(perThread) != 2 {
		t.Fatalf("algorithms attribute to %d threads (%v), want 2", len(perThread), perThread)
	}
	// The main thread only spawns and joins; nearly all instructions are
	// the workers'. A main-only count would be a small fraction.
	if prof.EventCount() == 0 {
		t.Error("merged profile counts zero events")
	}
	if prof.Threads != 2 {
		t.Errorf("Threads = %d, want 2", prof.Threads)
	}
}

// TestThreadedSeedIndependence: per-thread rng streams derive from the
// seed and the tid, so changing the seed changes every thread's draws,
// while rerunning the same seed reproduces them exactly.
func TestThreadedSeedIndependence(t *testing.T) {
	// Each thread prints a sum of rand draws, so its tid-derived stream is
	// visible in the output.
	const src = `
class Main {
  public static void main() {
    int h1 = spawn Main.work();
    int h2 = spawn Main.work();
    join h1;
    join h2;
  }
  static void work() {
    int s = 0;
    for (int i = 0; i < 8; i++) { s = s + rand(1000); }
    print(s);
  }
}`
	a1, err := algoprof.Run(src, algoprof.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := algoprof.Run(src, algoprof.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := algoprof.Run(src, algoprof.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a1.Stdout) != fmt.Sprint(a2.Stdout) {
		t.Errorf("same seed, different stdout: %v vs %v", a1.Stdout, a2.Stdout)
	}
	if a1.Instructions != a2.Instructions {
		t.Errorf("same seed, different instructions: %d vs %d", a1.Instructions, a2.Instructions)
	}
	if fmt.Sprint(a1.Stdout) == fmt.Sprint(b.Stdout) {
		t.Errorf("seed change did not reach spawned threads: both print %v", a1.Stdout)
	}
	// Sibling threads under one seed draw distinct streams.
	if a1.Stdout[0] == a1.Stdout[1] {
		t.Errorf("sibling threads drew identical sums: %v", a1.Stdout)
	}
}

// TestRecordWithoutSinkRejectsSpawn: the plain Record entry points have
// nowhere to put per-thread traces, so a spawning program must fail
// typed rather than silently record a main-only trace.
func TestRecordWithoutSinkRejectsSpawn(t *testing.T) {
	_, err := algoprof.Record(workloads.Threaded(2, 8), algoprof.Config{}, io.Discard, trace.WriterOptions{})
	if err == nil || !strings.Contains(err.Error(), "per-thread session provider") {
		t.Errorf("sinkless record of spawning program: err = %v", err)
	}
}
