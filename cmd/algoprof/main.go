// Command algoprof runs an MJ program under the algorithmic profiler and
// prints the repetition tree with algorithm annotations and fitted cost
// functions (the paper's Figure 3 view), optionally with scatter plots.
//
// Usage:
//
//	algoprof [-seed N] [-unique] [-eager] [-plot ALGO] prog.mj
//	algoprof record [-store DIR] [-name NAME] [-workload LABEL] [profiling flags] prog.mj
//	algoprof replay [-store DIR] [-json] [-j N] NAME
//	algoprof diff   [-store DIR] OLD NEW
//	algoprof fleetdiff [-store DIR] [-json] [-j N] [-tenant T] BASELINE [RUN...]
//	algoprof runs   [-store DIR] [-tenant T]
//	algoprof chaos  [-seeds N] [-base-seed N] [-dir DIR] [-service] [-dist] [-v]
//	algoprof verify DIR
//	algoprof verify -range LO:HI TRACE
//
// record captures the run's full event stream to a trace store; replay
// rebuilds the identical profile offline from the stored trace (no VM
// execution — with -j N the trace decodes on N workers, same profile
// byte-for-byte); diff compares two stored runs' fitted cost functions and
// exits non-zero when an algorithm's complexity class regressed (e.g.
// n·log n → n²), as opposed to mere constant-factor drift, and also
// reports how the two runs' traces differ frame-by-frame via their Merkle
// footers. fleetdiff fans that trace differ out across every run in the
// store against a baseline.
//
// chaos sweeps seeded fault schedules through the whole pipeline (see
// internal/chaos) and exits non-zero unless every schedule succeeds,
// degrades deterministically, or fails with a typed fault class. verify
// audits a stored run directory — or a whole store of them — offline and
// exits non-zero when any artifact is damaged or inconsistent; with
// -range LO:HI it instead proves frames [LO, HI) of one trace file intact
// against the trace's Merkle root, reading only the footer and that range.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"algoprof"
	"algoprof/internal/chaos"
	"algoprof/internal/dispatch"
	"algoprof/internal/experiments"
	"algoprof/internal/focus"
	"algoprof/internal/service"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
	"algoprof/internal/verify"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			cmdRecord(os.Args[2:])
			return
		case "replay":
			cmdReplay(os.Args[2:])
			return
		case "diff":
			cmdDiff(os.Args[2:])
			return
		case "fleetdiff":
			cmdFleetDiff(os.Args[2:])
			return
		case "runs":
			cmdRuns(os.Args[2:])
			return
		case "chaos":
			cmdChaos(os.Args[2:])
			return
		case "verify":
			cmdVerify(os.Args[2:])
			return
		}
	}
	cmdRun(os.Args[1:])
}

// profFlags registers the profiling-configuration flags shared by the
// default run mode and the record subcommand.
type profFlags struct {
	mode      *string
	seed      *uint64
	unique    *bool
	eager     *bool
	strategy  *string
	criterion *string
	sample    *int
	maxEvents *uint64
	maxLive   *int64
	deadline  *time.Duration
}

func addProfFlags(fs *flag.FlagSet) *profFlags {
	return &profFlags{
		mode:      fs.String("mode", algoprof.ModeEvents, "profiling mode: events (exact streaming) or paths (Ball–Larus path counters, lower overhead)"),
		seed:      fs.Uint64("seed", 1, "seed for the rand() builtin"),
		unique:    fs.Bool("unique", false, "use the unique-element array size strategy"),
		eager:     fs.Bool("eager", false, "disable the deferred-identification optimization"),
		strategy:  fs.String("strategy", "shared-input", "grouping strategy: shared-input or same-method"),
		criterion: fs.String("criterion", "some-elements", "equivalence criterion: some-elements, all-elements, same-array, same-type"),
		sample:    fs.Int("sample", 0, "keep only every k-th invocation record (memory optimization)"),
		maxEvents: fs.Uint64("max-events", 0, "degrade to invocation sampling after this many profiling events (0 = unlimited)"),
		maxLive:   fs.Int64("max-live-bytes", 0, "degrade when profiler live memory exceeds this estimate (0 = unlimited)"),
		deadline:  fs.Duration("deadline", 0, "halt the run cleanly after this wall-clock budget and report the degraded partial profile (0 = unlimited)"),
	}
}

func (pf *profFlags) config() algoprof.Config {
	cfg := algoprof.Config{Mode: *pf.mode, Seed: *pf.seed, EagerIdentify: *pf.eager, SampleEvery: *pf.sample}
	cfg.Limits = algoprof.Limits{
		MaxEvents:    *pf.maxEvents,
		MaxLiveBytes: *pf.maxLive,
		Deadline:     *pf.deadline,
	}
	if *pf.unique {
		cfg.SizeStrategy = algoprof.UniqueElements
	}
	switch *pf.strategy {
	case "shared-input":
	case "same-method":
		cfg.GroupStrategy = algoprof.SameMethod
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *pf.strategy))
	}
	switch *pf.criterion {
	case "some-elements":
	case "all-elements":
		cfg.Criterion = algoprof.AllElements
	case "same-array":
		cfg.Criterion = algoprof.SameArray
	case "same-type":
		cfg.Criterion = algoprof.SameType
	default:
		fatal(fmt.Errorf("unknown -criterion %q", *pf.criterion))
	}
	return cfg
}

// cmdRun is the classic mode: profile a program live and print the report.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("algoprof", flag.ExitOnError)
	pf := addProfFlags(fs)
	plot := fs.String("plot", "", "also print a scatter plot for the named algorithm (e.g. List.sort/loop1)")
	jsonOut := fs.Bool("json", false, "emit the profile as JSON instead of text")
	focusK := fs.Int("focus", 0, "CCT-guided view: show the K hottest methods with their algorithms")
	fs.Parse(args)

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof [flags] prog.mj  (or: algoprof record|replay|diff|runs)")
		fs.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	cfg := pf.config()

	if *focusK > 0 {
		res, err := focus.Run(string(src), cfg, *focusK)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== Top %d hot methods (CCT) with their algorithms ===\n", *focusK)
		for _, r := range res.Regions {
			fmt.Printf("%-28s excl=%-10d calls=%d\n", r.Method, r.ExclusiveCost, r.Calls)
			for _, alg := range r.Algorithms {
				fmt.Printf("    %-28s steps=%-10d %s\n", alg.Name, alg.TotalSteps, alg.Description)
				for _, cf := range alg.CostFunctions {
					fmt.Printf("        steps ≈ %s over %s (R2=%.3f)\n", cf.Text, cf.InputLabel, cf.R2)
				}
			}
		}
		return
	}

	prof, err := algoprof.Run(string(src), cfg)
	if err != nil {
		fatal(err)
	}
	printProfile(prof, *jsonOut, *plot)
}

// printProfile renders a profile the same way for live runs, recordings,
// and replays — byte-identical output is the replay correctness contract.
// The degraded notice goes to stderr so that contract holds on stdout even
// when live and replayed runs degrade for different reasons.
func printProfile(prof *algoprof.Profile, jsonOut bool, plot string) {
	if prof.Degraded {
		fmt.Fprintf(os.Stderr, "algoprof: degraded run (%s); totals exact, series sampled\n",
			strings.Join(prof.DegradedReasons, ", "))
	}
	if jsonOut {
		data, err := prof.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	fmt.Println("=== Repetition tree (algorithmic profile) ===")
	fmt.Print(prof.Tree())

	fmt.Println("\n=== Algorithms by total algorithmic steps ===")
	for _, alg := range prof.Algorithms {
		fmt.Printf("%-32s steps=%-10d invocations=%-6d %s\n",
			alg.Name, alg.TotalSteps, alg.Invocations, alg.Description)
		for _, cf := range alg.CostFunctions {
			fmt.Printf("    steps ≈ %s over %s (R2=%.3f, %d points)\n",
				cf.Text, cf.InputLabel, cf.R2, len(cf.Points))
		}
	}

	if plot != "" {
		fmt.Printf("\n=== Scatter: %s ===\n", plot)
		p, err := prof.PlotAlgorithm(plot, "", 72, 20)
		if err != nil {
			fatal(err)
		}
		fmt.Print(p)
	}
}

// cmdRecord profiles a program and persists the run — source, event trace,
// and manifest with fitted cost functions — into the trace store.
func cmdRecord(args []string) {
	fs := flag.NewFlagSet("algoprof record", flag.ExitOnError)
	pf := addProfFlags(fs)
	dir := fs.String("store", "traces", "trace store directory")
	name := fs.String("name", "", "run name (default: program basename + timestamp)")
	workload := fs.String("workload", "", "workload label stored in the manifest")
	compress := fs.Bool("compress", true, "DEFLATE-compress trace frames")
	maxTrace := fs.Int64("max-trace-bytes", 0, "stop capturing trace frames past this file size; the trace stays replayable (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the profile as JSON instead of text")
	fs.Parse(args)

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof record [flags] prog.mj")
		fs.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		base := strings.TrimSuffix(filepath.Base(fs.Arg(0)), filepath.Ext(fs.Arg(0)))
		*name = fmt.Sprintf("%s-%d", base, time.Now().Unix())
	}

	s, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	cfg := pf.config()
	cfg.Limits.MaxTraceBytes = *maxTrace
	run, err := s.Record(*name, string(src), *workload, cfg,
		trace.WriterOptions{Compress: *compress})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recorded run %q in %s\n", run.Name, run.Dir)
	printProfile(run.Profile, *jsonOut, "")
}

// cmdReplay rebuilds a stored run's profile offline from its trace and
// prints the same report the live run printed.
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("algoprof replay", flag.ExitOnError)
	dir := fs.String("store", "traces", "trace store directory")
	jsonOut := fs.Bool("json", false, "emit the profile as JSON instead of text")
	workers := fs.Int("j", 1, "decode trace frames on N workers (0 = all cores); the profile is byte-identical to -j 1")
	fs.Parse(args)

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof replay [-store DIR] [-j N] NAME")
		fs.PrintDefaults()
		os.Exit(2)
	}
	if err := validateWorkers(*workers); err != nil {
		fatalUsage(err)
	}
	s, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	var run *store.Run
	if *workers == 1 {
		run, err = s.Replay(fs.Arg(0))
	} else {
		run, err = s.ReplayParallel(context.Background(), fs.Arg(0), *workers)
	}
	if err != nil {
		fatal(err)
	}
	printProfile(run.Profile, *jsonOut, "")
}

// cmdDiff compares two stored runs' fitted cost functions and exits with
// status 1 when a complexity-class regression is flagged, so it slots into
// CI as an algorithmic-regression gate.
func cmdDiff(args []string) {
	fs := flag.NewFlagSet("algoprof diff", flag.ExitOnError)
	dir := fs.String("store", "traces", "trace store directory")
	fs.Parse(args)

	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: algoprof diff [-store DIR] OLD NEW")
		fs.PrintDefaults()
		os.Exit(2)
	}
	s, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	oldRun, err := s.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRun, err := s.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	d := store.DiffRuns(&oldRun.Manifest, &newRun.Manifest)
	fmt.Printf("diff %s -> %s\n", oldRun.Name, newRun.Name)
	fmt.Print(d.Render())
	printTraceDiff(oldRun, newRun)
	if d.HasComplexityRegression() {
		fmt.Fprintln(os.Stderr, "algoprof: complexity regression detected")
		os.Exit(1)
	}
}

// printTraceDiff appends a frame-level trace comparison to a run diff.
// Best-effort: interrupted runs have no reachable trace index, and their
// cost-function diff above still stands on its own.
func printTraceDiff(oldRun, newRun *store.Run) {
	td, err := trace.DiffTraceFiles(
		filepath.Join(oldRun.Dir, store.TraceName),
		filepath.Join(newRun.Dir, store.TraceName))
	if err != nil {
		fmt.Fprintf(os.Stderr, "algoprof: trace diff unavailable: %v\n", err)
		return
	}
	fmt.Print(renderTraceDiff(td))
}

// renderTraceDiff formats a frame-level trace diff.
func renderTraceDiff(td *trace.TraceDiff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d -> %d frames", td.OldFrames, td.NewFrames)
	switch {
	case td.Identical:
		b.WriteString(", identical")
	case td.FullScan:
		fmt.Fprintf(&b, ", %d changed (%d records) via full scan", td.ChangedFrames, td.ChangedRecords)
	default:
		fmt.Fprintf(&b, ", %d changed (%d records) in %d range(s)", td.ChangedFrames, td.ChangedRecords, len(td.ChangedRanges))
	}
	fmt.Fprintf(&b, "; %d hash comparisons, %d bytes read\n",
		td.HashComparisons, td.BytesReadOld+td.BytesReadNew)
	for _, rg := range td.ChangedRanges {
		fmt.Fprintf(&b, "    frames [%d,%d)\n", rg[0], rg[1])
	}
	return b.String()
}

// cmdFleetDiff compares one baseline run's trace against every other run in
// the store (or an explicit run list), in parallel on the experiments
// worker pool. Exit status 1 when any comparison failed.
func cmdFleetDiff(args []string) {
	fs := flag.NewFlagSet("algoprof fleetdiff", flag.ExitOnError)
	dir := fs.String("store", "traces", "trace store directory")
	jsonOut := fs.Bool("json", false, "emit the fleet report as JSON")
	workers := fs.Int("j", 0, "bound the comparison worker pool (0 = all cores)")
	tenant := fs.String("tenant", "", "scope the fleet expansion to one tenant's runs (empty = all)")
	fs.Parse(args)

	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof fleetdiff [-store DIR] [-json] [-j N] [-tenant T] BASELINE [RUN...]")
		fs.PrintDefaults()
		os.Exit(2)
	}
	experiments.SetParallelism(*workers)
	s, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	rep, err := s.FleetDiffTenant(fs.Arg(0), fs.Args()[1:], *tenant)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Printf("fleetdiff baseline=%s runs=%d identical=%d changed=%d failed=%d bytes_read=%d\n",
			rep.Baseline, len(rep.Entries), rep.Identical, rep.Changed, rep.Failed, rep.BytesRead)
		for _, e := range rep.Entries {
			switch {
			case e.Err != "":
				fmt.Printf("  %-24s ERROR %s\n", e.Run, e.Err)
			case e.SkippedByRoot:
				fmt.Printf("  %-24s identical (manifest merkle root)\n", e.Run)
			case e.Identical:
				fmt.Printf("  %-24s identical\n", e.Run)
			default:
				fmt.Printf("  %-24s %s", e.Run, renderTraceDiff(e.Diff))
			}
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "algoprof: fleetdiff: %d run(s) failed to compare\n", rep.Failed)
		os.Exit(1)
	}
}

// cmdRuns lists the stored runs with their manifests' key facts.
func cmdRuns(args []string) {
	fs := flag.NewFlagSet("algoprof runs", flag.ExitOnError)
	dir := fs.String("store", "traces", "trace store directory")
	tenant := fs.String("tenant", "", "list only one tenant's runs (empty = all)")
	fs.Parse(args)

	s, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	names, err := s.ListTenant(*tenant)
	if err != nil {
		fatal(err)
	}
	for _, name := range names {
		run, err := s.Load(name)
		if err != nil {
			fatal(err)
		}
		created := time.Unix(run.Manifest.CreatedUnix, 0).UTC().Format(time.RFC3339)
		note := ""
		if run.Manifest.Degraded {
			note = "  DEGRADED(" + strings.Join(run.Manifest.DegradedReasons, ",") + ")"
		}
		tn := ""
		if run.Manifest.Tenant != "" {
			tn = "  tenant=" + run.Manifest.Tenant
		}
		fmt.Printf("%-24s %s  workload=%-20q algorithms=%d  instrs=%d%s%s\n",
			name, created, run.Manifest.Workload, len(run.Manifest.Algorithms),
			run.Manifest.Instructions, tn, note)
	}
}

// cmdChaos sweeps seeded fault schedules through record/replay/verify and
// reports the outcome trichotomy. Any contract violation — an untyped
// error, a nondeterministic degradation, a silently wrong profile, a panic
// — exits non-zero.
func cmdChaos(args []string) {
	fs := flag.NewFlagSet("algoprof chaos", flag.ExitOnError)
	seeds := fs.Int("seeds", 16, "number of seeded fault schedules to run")
	baseSeed := fs.Uint64("base-seed", 1, "seed of the first schedule")
	dir := fs.String("dir", "", "scratch directory for run stores (default: a temp dir, removed afterwards)")
	verbose := fs.Bool("v", false, "log each schedule as it completes")
	svcSweep := fs.Bool("service", false, "sweep the profiling daemon's write path (job intake, pool, persist) instead of the record pipeline")
	distSweep := fs.Bool("dist", false, "sweep the distributed dispatch path (worker crashes, partitions, slow workers, corrupt responses)")
	fs.Parse(args)

	scratch := *dir
	if scratch == "" {
		tmp, err := os.MkdirTemp("", "algoprof-chaos-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		scratch = tmp
	}
	cfg := chaos.Config{Seeds: *seeds, BaseSeed: *baseSeed, Dir: scratch}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	run := chaos.Run
	switch {
	case *svcSweep:
		run = service.RunChaos
	case *distSweep:
		run = dispatch.RunChaos
	}
	rep, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

// cmdVerify audits stored runs offline. Its argument is either one run
// directory (it contains a manifest) or a whole store directory, in which
// case every entry is audited — including garbage entries the run listing
// would skip. With -pathdecode the argument is an MJ program instead: it
// is profiled in both events and paths mode and the decoded profile is
// cross-checked node-by-node against the exact one.
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("algoprof verify", flag.ExitOnError)
	pathdecode := fs.Bool("pathdecode", false, "treat the argument as an MJ program and cross-check paths-mode decode against events mode")
	seed := fs.Uint64("seed", 1, "seed for the rand() builtin (with -pathdecode)")
	frameRange := fs.String("range", "", "prove frames LO:HI of a trace file against its Merkle root, reading only the footer and that range")
	fs.Parse(args)

	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof verify DIR  (a run directory or a trace store)")
		fmt.Fprintln(os.Stderr, "       algoprof verify -range LO:HI TRACE  (a trace file or run directory)")
		fmt.Fprintln(os.Stderr, "       algoprof verify -pathdecode [-seed N] prog.mj")
		os.Exit(2)
	}
	if *pathdecode {
		cmdVerifyPathDecode(fs.Arg(0), *seed)
		return
	}
	if *frameRange != "" {
		cmdVerifyRange(fs.Arg(0), *frameRange)
		return
	}
	dir := fs.Arg(0)
	var findings []chaos.Finding
	if _, err := os.Stat(filepath.Join(dir, store.ManifestName)); err == nil {
		findings = chaos.AuditRun(dir)
	} else {
		var aerr error
		findings, aerr = chaos.AuditStore(dir)
		if aerr != nil {
			fatal(aerr)
		}
	}
	if len(findings) == 0 {
		fmt.Println("verify: ok")
		return
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "algoprof: verify found %d defect(s)\n", len(findings))
	os.Exit(1)
}

// cmdVerifyRange proves one frame range of a trace file intact against the
// trace's Merkle root. The argument may be a trace file or a run directory
// (then the run's trace is verified). HI may be omitted ("LO:") to mean the
// end of the trace, and LO may be omitted (":HI") to mean the start.
func cmdVerifyRange(path, spec string) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, store.TraceName)
	}
	ix, err := trace.OpenIndex(path)
	if err != nil {
		fatal(err)
	}
	lo, hi, err := parseFrameRange(spec, ix.Frames)
	if err != nil {
		fatalUsage(err)
	}
	rc, err := trace.VerifyFileRange(path, lo, hi)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verify: frames [%d,%d) ok — %d records, root %s\n", rc.Lo, rc.Hi, rc.Records, rc.Root)
	fmt.Printf("verify: read %d of %d file bytes (%.1f%%)\n",
		rc.BytesRead, rc.FileSize, 100*float64(rc.BytesRead)/float64(rc.FileSize))
}

// cmdVerifyPathDecode profiles one program under both modes with the
// online verifier attached and cross-checks the decoded repetition tree
// against the exact one. Exit status 1 on any disagreement.
func cmdVerifyPathDecode(path string, seed uint64) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	ev, err := algoprof.Run(string(src), algoprof.Config{Seed: seed, Verify: true})
	if err != nil {
		fatal(fmt.Errorf("events mode: %w", err))
	}
	pt, err := algoprof.Run(string(src), algoprof.Config{Mode: algoprof.ModePaths, Seed: seed, Verify: true})
	if err != nil {
		fatal(fmt.Errorf("paths mode: %w", err))
	}
	evProf, _ := ev.Raw()
	ptProf, _ := pt.Raw()
	vs := verify.CheckPathDecode(evProf, ptProf)
	if len(vs) == 0 {
		fmt.Println("verify: path decode matches events mode")
		return
	}
	for _, v := range vs {
		fmt.Println(v)
	}
	fmt.Fprintf(os.Stderr, "algoprof: path decode disagrees with events mode: %d violation(s)\n", len(vs))
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "algoprof:", err)
	os.Exit(1)
}
