// Command algoprof runs an MJ program under the algorithmic profiler and
// prints the repetition tree with algorithm annotations and fitted cost
// functions (the paper's Figure 3 view), optionally with scatter plots.
//
// Usage:
//
//	algoprof [-seed N] [-unique] [-eager] [-plot ALGO] prog.mj
package main

import (
	"flag"
	"fmt"
	"os"

	"algoprof"
	"algoprof/internal/focus"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for the rand() builtin")
	unique := flag.Bool("unique", false, "use the unique-element array size strategy")
	eager := flag.Bool("eager", false, "disable the deferred-identification optimization")
	plot := flag.String("plot", "", "also print a scatter plot for the named algorithm (e.g. List.sort/loop1)")
	jsonOut := flag.Bool("json", false, "emit the profile as JSON instead of text")
	focusK := flag.Int("focus", 0, "CCT-guided view: show the K hottest methods with their algorithms")
	strategy := flag.String("strategy", "shared-input", "grouping strategy: shared-input or same-method")
	criterion := flag.String("criterion", "some-elements", "equivalence criterion: some-elements, all-elements, same-array, same-type")
	sample := flag.Int("sample", 0, "keep only every k-th invocation record (memory optimization)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: algoprof [flags] prog.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := algoprof.Config{Seed: *seed, EagerIdentify: *eager, SampleEvery: *sample}
	if *unique {
		cfg.SizeStrategy = algoprof.UniqueElements
	}
	switch *strategy {
	case "shared-input":
	case "same-method":
		cfg.GroupStrategy = algoprof.SameMethod
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}
	switch *criterion {
	case "some-elements":
	case "all-elements":
		cfg.Criterion = algoprof.AllElements
	case "same-array":
		cfg.Criterion = algoprof.SameArray
	case "same-type":
		cfg.Criterion = algoprof.SameType
	default:
		fatal(fmt.Errorf("unknown -criterion %q", *criterion))
	}

	if *focusK > 0 {
		res, err := focus.Run(string(src), cfg, *focusK)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== Top %d hot methods (CCT) with their algorithms ===\n", *focusK)
		for _, r := range res.Regions {
			fmt.Printf("%-28s excl=%-10d calls=%d\n", r.Method, r.ExclusiveCost, r.Calls)
			for _, alg := range r.Algorithms {
				fmt.Printf("    %-28s steps=%-10d %s\n", alg.Name, alg.TotalSteps, alg.Description)
				for _, cf := range alg.CostFunctions {
					fmt.Printf("        steps ≈ %s over %s (R2=%.3f)\n", cf.Text, cf.InputLabel, cf.R2)
				}
			}
		}
		return
	}

	prof, err := algoprof.Run(string(src), cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		data, err := prof.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	fmt.Println("=== Repetition tree (algorithmic profile) ===")
	fmt.Print(prof.Tree())

	fmt.Println("\n=== Algorithms by total algorithmic steps ===")
	for _, alg := range prof.Algorithms {
		fmt.Printf("%-32s steps=%-10d invocations=%-6d %s\n",
			alg.Name, alg.TotalSteps, alg.Invocations, alg.Description)
		for _, cf := range alg.CostFunctions {
			fmt.Printf("    steps ≈ %s over %s (R2=%.3f, %d points)\n",
				cf.Text, cf.InputLabel, cf.R2, len(cf.Points))
		}
	}

	if *plot != "" {
		fmt.Printf("\n=== Scatter: %s ===\n", *plot)
		p, err := prof.PlotAlgorithm(*plot, "", 72, 20)
		if err != nil {
			fatal(err)
		}
		fmt.Print(p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "algoprof:", err)
	os.Exit(1)
}
