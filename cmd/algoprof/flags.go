package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// usageError marks a bad flag or argument value. It exits with status 2
// (usage), distinguishing operator mistakes from runtime failures, which
// exit 1.
type usageError struct{ msg string }

// Error implements error.
func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) *usageError {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// parseFrameRange validates a -range LO:HI spec against the trace's frame
// count. Either bound may be omitted ("LO:" runs to the end, ":HI" starts
// at 0). Negative, reversed, and out-of-bounds ranges are usage errors —
// rejected before any frame is read.
func parseFrameRange(spec string, frames int) (lo, hi int, err error) {
	colon := strings.IndexByte(spec, ':')
	if colon < 0 {
		return 0, 0, usagef("bad -range %q: want LO:HI", spec)
	}
	lo, hi = 0, frames
	if s := spec[:colon]; s != "" {
		if lo, err = strconv.Atoi(s); err != nil {
			return 0, 0, usagef("bad -range %q: LO: %v", spec, err)
		}
	}
	if s := spec[colon+1:]; s != "" {
		if hi, err = strconv.Atoi(s); err != nil {
			return 0, 0, usagef("bad -range %q: HI: %v", spec, err)
		}
	}
	switch {
	case lo < 0:
		return 0, 0, usagef("bad -range %q: LO is negative", spec)
	case hi > frames:
		return 0, 0, usagef("bad -range %q: HI %d exceeds the trace's %d frames", spec, hi, frames)
	case lo > hi:
		return 0, 0, usagef("bad -range %q: LO %d exceeds HI %d", spec, lo, hi)
	}
	return lo, hi, nil
}

// validateWorkers validates a -j worker count: 0 means all cores,
// positive bounds the pool, negative is meaningless.
func validateWorkers(j int) error {
	if j < 0 {
		return usagef("bad -j %d: want 0 (all cores) or a positive worker count", j)
	}
	return nil
}

// fatalUsage reports a usage error and exits 2, matching flag-package
// behaviour for malformed flags.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "algoprof:", err)
	os.Exit(2)
}
