package main

import (
	"errors"
	"strings"
	"testing"
)

func TestParseFrameRange(t *testing.T) {
	const frames = 100
	tests := []struct {
		spec    string
		lo, hi  int
		wantErr string // substring of the usage error, "" = valid
	}{
		{spec: "0:100", lo: 0, hi: 100},
		{spec: "5:10", lo: 5, hi: 10},
		{spec: ":", lo: 0, hi: 100},
		{spec: "7:", lo: 7, hi: 100},
		{spec: ":42", lo: 0, hi: 42},
		{spec: "100:100", lo: 100, hi: 100}, // empty range at the end is fine
		{spec: "", wantErr: "want LO:HI"},
		{spec: "12", wantErr: "want LO:HI"},
		{spec: "lo:hi", wantErr: "LO:"},
		{spec: "3:hi", wantErr: "HI:"},
		{spec: "-1:10", wantErr: "LO is negative"},
		{spec: "-5:", wantErr: "LO is negative"},
		{spec: "0:101", wantErr: "exceeds the trace's 100 frames"},
		{spec: ":200", wantErr: "exceeds the trace's 100 frames"},
		{spec: "10:5", wantErr: "LO 10 exceeds HI 5"},
		{spec: "101:", wantErr: "LO 101 exceeds HI 100"},
	}
	for _, tc := range tests {
		t.Run(tc.spec, func(t *testing.T) {
			lo, hi, err := parseFrameRange(tc.spec, frames)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFrameRange(%q) error: %v", tc.spec, err)
				}
				if lo != tc.lo || hi != tc.hi {
					t.Fatalf("parseFrameRange(%q) = %d:%d, want %d:%d", tc.spec, lo, hi, tc.lo, tc.hi)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFrameRange(%q) = %d:%d, want error containing %q", tc.spec, lo, hi, tc.wantErr)
			}
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("parseFrameRange(%q) error %T, want *usageError", tc.spec, err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFrameRange(%q) error %q, want substring %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

func TestValidateWorkers(t *testing.T) {
	tests := []struct {
		j       int
		wantErr bool
	}{
		{j: 0},  // documented: all cores
		{j: 1},  // sequential decode
		{j: 16}, // bounded pool
		{j: -1, wantErr: true},
		{j: -8, wantErr: true},
	}
	for _, tc := range tests {
		err := validateWorkers(tc.j)
		if !tc.wantErr {
			if err != nil {
				t.Fatalf("validateWorkers(%d) error: %v", tc.j, err)
			}
			continue
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("validateWorkers(%d) = %v, want *usageError", tc.j, err)
		}
	}
}
