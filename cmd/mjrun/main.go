// Command mjrun compiles and executes an MJ program without profiling.
//
// Usage:
//
//	mjrun [-seed N] [-input "1,2,3"] [-mode off|events|paths] [-disasm] [-maxsteps N] prog.mj
//
// -mode selects the instrumentation the program runs (or disassembles)
// under without attaching any listener: off executes the plain bytecode,
// events adds the exact probe instructions, paths rewrites counted loops
// with Ball–Larus path-counter superinstructions. Combined with -disasm
// this shows exactly what each profiling mode executes; combined with
// timing it isolates the probe-dispatch cost from the listener cost.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"algoprof/internal/instrument"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for the rand() builtin")
	input := flag.String("input", "", "comma-separated ints fed to readInput()")
	mode := flag.String("mode", "off", "instrumentation: off (plain), events (exact probes), paths (path-counter superinstructions)")
	disasm := flag.Bool("disasm", false, "print the compiled bytecode instead of running")
	maxSteps := flag.Uint64("maxsteps", 0, "instruction budget (0 = default)")
	deadline := flag.Duration("deadline", 0, "halt execution cleanly after this wall-clock budget and print the partial output (0 = unlimited)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjrun [flags] prog.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compiler.CompileSource(string(src))
	if err != nil {
		fatal(err)
	}
	numSites := 0
	switch *mode {
	case "off":
	case "events", "paths":
		imode := instrument.Optimized
		if *mode == "paths" {
			imode = instrument.Paths
		}
		ins, err := instrument.Instrument(prog, imode)
		if err != nil {
			fatal(err)
		}
		prog = ins.Prog
		numSites = ins.NumSites()
	default:
		fatal(fmt.Errorf("unknown -mode %q (want off, events, or paths)", *mode))
	}
	if *disasm {
		fmt.Print(bytecode.DisassembleProgram(prog))
		return
	}

	var in []int64
	if *input != "" {
		for _, part := range strings.Split(*input, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -input element %q: %w", part, err))
			}
			in = append(in, v)
		}
	}

	cfg := vm.Config{Seed: *seed, Input: in, MaxSteps: *maxSteps, NumSites: numSites}
	if *deadline > 0 {
		end := time.Now().Add(*deadline)
		cfg.Watchdog = func() error {
			if time.Now().After(end) {
				return &vm.Halt{Reason: "deadline"}
			}
			return nil
		}
	}
	m := vm.New(prog, cfg)
	if err := m.Run(); err != nil {
		var halt *vm.Halt
		if errors.As(err, &halt) {
			fmt.Fprintf(os.Stderr, "mjrun: halted (%s); partial output follows\n", halt.Reason)
		} else {
			fatal(err)
		}
	}
	for _, line := range m.Stdout {
		fmt.Println(line)
	}
	for _, v := range m.Output {
		fmt.Printf("output: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "executed %d instructions, %d allocations\n", m.InstrCount, m.AllocCount)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjrun:", err)
	os.Exit(1)
}
