// Command mjrun compiles and executes an MJ program without profiling.
//
// Usage:
//
//	mjrun [-seed N] [-input "1,2,3"] [-disasm] [-maxsteps N] prog.mj
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for the rand() builtin")
	input := flag.String("input", "", "comma-separated ints fed to readInput()")
	disasm := flag.Bool("disasm", false, "print the compiled bytecode instead of running")
	maxSteps := flag.Uint64("maxsteps", 0, "instruction budget (0 = default)")
	deadline := flag.Duration("deadline", 0, "halt execution cleanly after this wall-clock budget and print the partial output (0 = unlimited)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjrun [flags] prog.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compiler.CompileSource(string(src))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(bytecode.DisassembleProgram(prog))
		return
	}

	var in []int64
	if *input != "" {
		for _, part := range strings.Split(*input, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -input element %q: %w", part, err))
			}
			in = append(in, v)
		}
	}

	cfg := vm.Config{Seed: *seed, Input: in, MaxSteps: *maxSteps}
	if *deadline > 0 {
		end := time.Now().Add(*deadline)
		cfg.Watchdog = func() error {
			if time.Now().After(end) {
				return &vm.Halt{Reason: "deadline"}
			}
			return nil
		}
	}
	m := vm.New(prog, cfg)
	if err := m.Run(); err != nil {
		var halt *vm.Halt
		if errors.As(err, &halt) {
			fmt.Fprintf(os.Stderr, "mjrun: halted (%s); partial output follows\n", halt.Reason)
		} else {
			fatal(err)
		}
	}
	for _, line := range m.Stdout {
		fmt.Println(line)
	}
	for _, v := range m.Output {
		fmt.Printf("output: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "executed %d instructions, %d allocations\n", m.InstrCount, m.AllocCount)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjrun:", err)
	os.Exit(1)
}
