// Command algoprofd is the multi-tenant profiling daemon: it accepts MJ
// programs with per-run configurations over HTTP/JSON, queues them on a
// bounded worker pool, enforces per-tenant quotas layered on the
// algoprof.Limits machinery, streams job progress and results as NDJSON,
// and persists every completed events-mode run into a trace store that
// `algoprof verify`, `diff`, and `fleetdiff` read unchanged.
//
// Usage:
//
//	algoprofd serve   [-addr :7071] [-store DIR] [-workers N] [-queue N]
//	                  [-max-active N] [-event-budget N] [-trace-budget N]
//	                  [-deadline-ceiling D] [-drain-timeout D]
//	                  [-remote-workers URL,URL,...] [-lease-ttl D]
//	algoprofd worker  [-addr :7072] [-scratch DIR]
//	algoprofd loadgen [-addr URL] [-jobs N] [-c N] [-tenants N]
//	                  [-out BENCH_service.json] [-check] [-baseline FILE]
//	algoprofd smoke   [-jobs N]
//	algoprofd distbench [-jobs N] [-fleet N] [-out BENCH_dispatch.json]
//	                  [-check]
//
// serve runs until SIGINT/SIGTERM, then drains: intake closes immediately
// (typed 503s), in-flight and queued jobs get -drain-timeout to finish
// normally, and past it running jobs are cancelled — salvaged partial
// profiles come back as degraded results, queued jobs fail typed. No job
// is ever silently dropped.
//
// loadgen hammers a running daemon and writes throughput, latency
// percentiles, queue depth, and the terminal-status accounting to a
// BENCH_service.json; -check additionally gates the run on the structural
// invariants (0 lost jobs, all failures typed) and, off single-core
// runners, on throughput against -baseline.
//
// smoke is the CI entry point: it boots an in-process daemon on an
// ephemeral port, runs one end-to-end job (submit → stream → verify the
// persisted run → byte-compare against the library API), then a short
// loadgen, and exits non-zero if any step fails.
//
// worker runs the distributed execution agent: a stateless process that
// executes jobs a daemon dispatches to it (POST /w/v1/exec) against a
// scratch store and ships the artifacts back. Point a daemon at a fleet of
// them with serve -remote-workers; see docs/SERVICE.md "Distributed
// operation" for the lease/retry/quarantine semantics.
//
// distbench benchmarks the dispatch layer: an in-process daemon plus a
// worker fleet push a job batch through three legs — 0, 1, and 2 abrupt
// worker crashes mid-batch — and write throughput, latency percentiles,
// and the retry/revocation/fallback counters to BENCH_dispatch.json.
// -check gates on the distributed invariant: zero lost jobs, all failures
// typed, in every leg.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"algoprof"
	"algoprof/internal/chaos"
	"algoprof/internal/dispatch"
	"algoprof/internal/service"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			cmdServe(os.Args[2:])
			return
		case "worker":
			cmdWorker(os.Args[2:])
			return
		case "loadgen":
			cmdLoadgen(os.Args[2:])
			return
		case "smoke":
			cmdSmoke(os.Args[2:])
			return
		case "distbench":
			cmdDistbench(os.Args[2:])
			return
		}
	}
	fmt.Fprintln(os.Stderr, "usage: algoprofd serve|worker|loadgen|smoke|distbench [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "algoprofd:", err)
	os.Exit(1)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("algoprofd serve", flag.ExitOnError)
	addr := fs.String("addr", ":7071", "listen address")
	storeDir := fs.String("store", "traces", "trace store directory")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	queue := fs.Int("queue", 256, "job queue depth across all tenants")
	maxActive := fs.Int("max-active", 0, "default per-tenant bound on queued+running jobs (0 = unlimited)")
	eventBudget := fs.Uint64("event-budget", 0, "default per-tenant aggregate event budget (0 = unlimited)")
	traceBudget := fs.Int64("trace-budget", 0, "default per-tenant aggregate trace-byte budget (0 = unlimited)")
	deadlineCeiling := fs.Duration("deadline-ceiling", 0, "default per-tenant per-job deadline ceiling (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain window after SIGTERM before in-flight jobs are cancelled (salvaged as degraded)")
	remoteWorkers := fs.String("remote-workers", "", "comma-separated worker base URLs (algoprofd worker processes); jobs dispatch to them with local execution as fallback")
	leaseTTL := fs.Duration("lease-ttl", dispatch.DefaultLeaseTTL, "per-job worker lease: a worker silent this long is revoked and the job re-dispatched")
	fs.Parse(args)

	logf := log.New(os.Stderr, "algoprofd: ", log.LstdFlags).Printf
	cfg := service.Config{
		StoreDir:   *storeDir,
		Workers:    *workers,
		QueueDepth: *queue,
		DefaultQuota: service.Quota{
			MaxActive:       *maxActive,
			EventBudget:     *eventBudget,
			TraceByteBudget: *traceBudget,
			DeadlineCeiling: *deadlineCeiling,
		},
		Logf: logf,
	}
	if *remoteWorkers != "" {
		urls := strings.Split(*remoteWorkers, ",")
		for i := range urls {
			urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
		}
		cfg.MakeExecutor = dispatch.MakeExecutor(dispatch.Config{
			Workers:  urls,
			LeaseTTL: *leaseTTL,
			Logf:     logf,
		})
		logf("dispatching to %d remote worker(s): %s", len(urls), strings.Join(urls, ", "))
	}
	svc, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	logf("serving on %s, store %s, %d workers, queue %d",
		ln.Addr(), *storeDir, runtime.GOMAXPROCS(0), *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("caught %s, draining (%s grace)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		svc.Drain(ctx)
		logf("drain complete, shutting down listener")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		srv.Shutdown(shutCtx)
	}()

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// cmdWorker runs the distributed execution agent until SIGINT/SIGTERM.
func cmdWorker(args []string) {
	fs := flag.NewFlagSet("algoprofd worker", flag.ExitOnError)
	addr := fs.String("addr", ":7072", "listen address")
	scratch := fs.String("scratch", "", "scratch store directory (default: a temp dir, removed on exit)")
	fs.Parse(args)

	logf := log.New(os.Stderr, "algoprofd-worker: ", log.LstdFlags).Printf
	dir := *scratch
	if dir == "" {
		tmp, err := os.MkdirTemp("", "algoprofd-worker-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	w, err := dispatch.NewWorker(dir, logf)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: w.Handler()}
	logf("worker serving on %s, scratch %s", ln.Addr(), dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		// Workers are stateless: in-flight jobs are revoked by the daemon's
		// lease machinery and re-dispatched, so shutdown is just closing.
		logf("caught %s, shutting down (%d jobs executed)", s, w.Executed())
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// dispatchBench is the BENCH_dispatch.json shape: provenance header plus
// the per-leg crash benchmark.
type dispatchBench struct {
	GeneratedUnix      int64 `json:"generated_unix"`
	GoMaxProcs         int   `json:"gomaxprocs"`
	TraceFormatVersion int   `json:"trace_format_version"`

	Dispatch dispatch.BenchReport `json:"dispatch"`
}

// cmdDistbench runs the worker-crash benchmark legs and writes
// BENCH_dispatch.json.
func cmdDistbench(args []string) {
	fs := flag.NewFlagSet("algoprofd distbench", flag.ExitOnError)
	jobs := fs.Int("jobs", 24, "jobs per leg")
	fleet := fs.Int("fleet", 3, "workers per leg")
	seed := fs.Uint64("seed", 1, "workload seed base")
	out := fs.String("out", "BENCH_dispatch.json", "benchmark output file (empty = skip write)")
	check := fs.Bool("check", false, "gate the run: zero lost jobs and zero untyped failures per leg")
	fs.Parse(args)

	scratch, err := os.MkdirTemp("", "algoprofd-distbench-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(scratch)
	rep, err := dispatch.RunBench(dispatch.BenchConfig{
		Dir:     scratch,
		Workers: *fleet,
		Jobs:    *jobs,
		Seed:    *seed,
		Logf:    log.Printf,
	})
	if err != nil {
		fatal(err)
	}
	for _, leg := range rep.Legs {
		fmt.Printf("distbench %s: %.1f jobs/s, p50=%.1fms p95=%.1fms, %d ok/%d degraded/%d failed/%d lost, %d retries, %d revocations, %d quarantines, %d fallbacks\n",
			leg.Name, leg.ThroughputJobsPerSec, leg.P50LatencyMs, leg.P95LatencyMs,
			leg.OK, leg.Degraded, leg.Failed, leg.Lost,
			leg.Retries, leg.LeaseRevocations, leg.Quarantines, leg.Fallbacks)
	}
	if *out != "" {
		bench := dispatchBench{
			GeneratedUnix:      time.Now().Unix(),
			GoMaxProcs:         runtime.GOMAXPROCS(0),
			TraceFormatVersion: trace.Version,
			Dispatch:           *rep,
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *check {
		if bad := rep.Check(); len(bad) > 0 {
			fatal(fmt.Errorf("distbench -check failed:\n  %s", strings.Join(bad, "\n  ")))
		}
		fmt.Println("distbench -check: ok")
	}
}

// serviceBench is the BENCH_service.json shape: the repo-wide provenance
// header plus the load report.
type serviceBench struct {
	GeneratedUnix      int64 `json:"generated_unix"`
	GoMaxProcs         int   `json:"gomaxprocs"`
	TraceFormatVersion int   `json:"trace_format_version"`

	Load service.LoadReport `json:"load"`
}

func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("algoprofd loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7071", "daemon base URL")
	jobs := fs.Int("jobs", 1000, "total jobs to complete")
	conc := fs.Int("c", 64, "concurrent in-flight submissions")
	tenants := fs.Int("tenants", 4, "synthetic tenants to spread jobs over")
	out := fs.String("out", "BENCH_service.json", "benchmark output file")
	check := fs.Bool("check", false, "gate the run: 0 lost jobs, typed failures, throughput vs -baseline")
	baselinePath := fs.String("baseline", "", "baseline BENCH_service.json for the -check throughput bar")
	fs.Parse(args)

	rep, err := runLoadgen(*addr, *jobs, *conc, *tenants, *out, log.Printf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: %d jobs in %dms (%.1f jobs/s): %d ok, %d degraded, %d failed, %d lost; p50=%.1fms p95=%.1fms p99=%.1fms maxqueue=%d\n",
		rep.Jobs, rep.WallMs, rep.JobsPerSec, rep.OK, rep.Degraded, rep.Failed, rep.Lost,
		rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms, rep.MaxQueueDepth)

	if *check {
		var baseline *service.LoadReport
		if *baselinePath != "" {
			data, err := os.ReadFile(*baselinePath)
			if err != nil {
				fatal(fmt.Errorf("loadgen -check: no baseline: %w", err))
			}
			var sb serviceBench
			if err := json.Unmarshal(data, &sb); err != nil {
				fatal(fmt.Errorf("loadgen -check: bad baseline %s: %w", *baselinePath, err))
			}
			baseline = &sb.Load
		}
		if bad := service.CheckLoadReport(rep, baseline); len(bad) > 0 {
			fatal(fmt.Errorf("loadgen -check failed:\n  %s", strings.Join(bad, "\n  ")))
		}
		fmt.Println("loadgen -check: ok")
	}
}

// runLoadgen runs the load, stamps the report, and writes the bench file
// ("" skips the write).
func runLoadgen(addr string, jobs, conc, tenants int, out string, logf func(string, ...any)) (*service.LoadReport, error) {
	rep, err := service.RunLoad(context.Background(), service.LoadConfig{
		Addr:        strings.TrimRight(addr, "/"),
		Jobs:        jobs,
		Concurrency: conc,
		Tenants:     tenants,
		Logf:        logf,
	})
	if err != nil {
		return nil, err
	}
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	if out != "" {
		bench := serviceBench{
			GeneratedUnix:      rep.GeneratedUnix,
			GoMaxProcs:         rep.GoMaxProcs,
			TraceFormatVersion: trace.Version,
			Load:               *rep,
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// cmdSmoke is the CI end-to-end: daemon up, one verified job, a short
// load, all in-process.
func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("algoprofd smoke", flag.ExitOnError)
	jobs := fs.Int("jobs", 60, "loadgen jobs for the smoke run")
	out := fs.String("out", "", "also write the smoke load report to this BENCH file")
	fs.Parse(args)

	if err := smoke(*jobs, *out); err != nil {
		fatal(err)
	}
	fmt.Println("smoke: ok")
}

func smoke(jobs int, out string) error {
	storeDir, err := os.MkdirTemp("", "algoprofd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	svc, err := service.New(service.Config{StoreDir: storeDir, QueueDepth: 1024})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// 1. Submit one job over HTTP and wait for its terminal view.
	src := workloads.RunningExample(workloads.Random, 32, 8, 1)
	body, _ := json.Marshal(service.SubmitRequest{
		Tenant: "smoke", Workload: "smoke-e2e", Program: src,
		Config: service.JobConfig{Seed: 7},
	})
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sr service.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(sr.Jobs) != 1 || sr.Jobs[0].Status != service.StatusOK {
		return fmt.Errorf("smoke: submit returned %+v", sr)
	}
	v := sr.Jobs[0]
	fmt.Printf("smoke: job %s ok in %dms (%d events, %d trace bytes)\n", v.ID, v.RunMs, v.Events, v.TraceBytes)

	// 2. Stream a second job's NDJSON events to the result line.
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sr2 service.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr2)
	resp.Body.Close()
	if err != nil || len(sr2.Jobs) != 1 {
		return fmt.Errorf("smoke: async submit: %v %+v", err, sr2)
	}
	streamResp, err := http.Get(base + "/v1/jobs/" + sr2.Jobs[0].ID + "/stream")
	if err != nil {
		return err
	}
	dec := json.NewDecoder(streamResp.Body)
	var lastType string
	for {
		var ev service.Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		lastType = ev.Type
	}
	streamResp.Body.Close()
	if lastType != "result" {
		return fmt.Errorf("smoke: stream ended with %q event, want result", lastType)
	}

	// 3. The persisted run passes the forensic audit `algoprof verify`
	// runs, and its profile is byte-identical to the library API's.
	runDir := filepath.Join(storeDir, v.ID)
	if findings := chaos.AuditRun(runDir); len(findings) != 0 {
		return fmt.Errorf("smoke: audit findings on service run: %v", findings)
	}
	prof, err := algoprof.Run(src, algoprof.Config{Seed: 7})
	if err != nil {
		return err
	}
	want, err := prof.JSON()
	if err != nil {
		return err
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, want); err != nil {
		return err
	}
	if !bytes.Equal(v.Profile, compact.Bytes()) {
		return fmt.Errorf("smoke: HTTP profile differs from library run")
	}
	fmt.Println("smoke: persisted run verified; profile matches library API byte-for-byte")

	// 4. A short load: every job must terminate in the trichotomy.
	rep, err := runLoadgen(base, jobs, 16, 3, out, nil)
	if err != nil {
		return err
	}
	if bad := service.CheckLoadReport(rep, nil); len(bad) > 0 {
		return fmt.Errorf("smoke loadgen gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Printf("smoke: loadgen %d jobs, %d ok, %d degraded, %d failed, 0 lost (%.1f jobs/s)\n",
		rep.Jobs, rep.OK, rep.Degraded, rep.Failed, rep.JobsPerSec)

	// 5. Drain cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc.Drain(ctx)
	return nil
}
