// Command paper regenerates every table and figure of the AlgoProf paper
// (PLDI'12) on the MJ substrate and prints them in paper-style text form.
//
// Usage:
//
//	paper [fig1|fig2|fig3|table1|fig4|fig5|paradigm|listing3|listing4|listing5|overhead|goldsmith|ablations|crossover|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"algoprof"
	"algoprof/internal/experiments"
	"algoprof/internal/workloads"
)

var sweep = experiments.DefaultSweep

func main() {
	maxSize := flag.Int("maxsize", sweep.MaxSize, "largest input size in sweeps")
	step := flag.Int("step", sweep.Step, "size step in sweeps")
	reps := flag.Int("reps", sweep.Reps, "repetitions per size")
	seed := flag.Uint64("seed", sweep.Seed, "random seed")
	flag.Parse()
	sweep = experiments.Sweep{MaxSize: *maxSize, Step: *step, Reps: *reps, Seed: *seed}

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	sections := map[string]func() error{
		"fig1":     fig1,
		"fig2":     fig2,
		"fig3":     fig3,
		"table1":   table1,
		"fig4":     fig45,
		"fig5":     fig45,
		"paradigm": paradigm,
		"listing3": listing3,
		"listing4": listing4,
		"listing5": listing5,
		"overhead": overhead,
		"goldsmith": func() error {
			return goldsmith()
		},
		"ablations": ablations,
		"crossover": crossover,
	}
	order := []string{"fig1", "fig2", "fig3", "table1", "fig4", "paradigm",
		"listing3", "listing4", "listing5", "overhead", "goldsmith", "ablations",
		"crossover"}

	if what == "all" {
		for _, name := range order {
			if err := sections[name](); err != nil {
				fatal(err)
			}
		}
		return
	}
	fn, ok := sections[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown section %q; options: %v or all\n", what, order)
		os.Exit(2)
	}
	if err := fn(); err != nil {
		fatal(err)
	}
}

func header(s string) { fmt.Printf("\n================ %s ================\n\n", s) }

func fig1() error {
	header("Figure 1: cost functions of insertion sort")
	for _, order := range []workloads.Order{workloads.Random, workloads.Sorted, workloads.Reversed} {
		res, err := experiments.Figure1(order, sweep)
		if err != nil {
			return err
		}
		fmt.Printf("(%s input)  steps ≈ %s   [model %s, R2=%.3f, %d runs]\n",
			res.Order, res.Text, res.Model, res.R2, len(res.Points))
		fmt.Print(res.Plot)
		fmt.Println()
	}
	return nil
}

func fig2() error {
	header("Figure 2: traditional profile (calling context tree)")
	res, err := experiments.Figure2(sweep)
	if err != nil {
		return err
	}
	fmt.Print(res.Tree)
	fmt.Printf("\nhottest method (exclusive): %s\nmost called: %s\n",
		res.HottestExclusive, res.MostCalled)
	return nil
}

func fig3() error {
	header("Figure 3: algorithmic profile (repetition tree)")
	res, err := experiments.Figure3(sweep)
	if err != nil {
		return err
	}
	fmt.Print(res.Tree)
	fmt.Printf("\nloops: %d; sort: %s (steps ≈ %.3g*%s); construct: %s\n",
		res.LoopCount, res.SortDescription, res.SortCoeff, res.SortModel, res.ConstructDescription)
	return nil
}

func table1() error {
	header("Table 1: data structure examples")
	outcomes, err := experiments.Table1(24, sweep.Seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(outcomes))
	return nil
}

func fig45() error {
	header("Figures 4 & 5: growing an array-backed list")
	res, err := experiments.Figure45(sweep)
	if err != nil {
		return err
	}
	fmt.Println("Repetition tree (naive growth):")
	fmt.Print(res.NaiveTree)
	fmt.Printf("\nappend+grow grouped: %v\n", res.Grouped)
	fmt.Printf("\nnaive (grow by 1):  cost ≈ %.3g*%s\n", res.NaiveCoeff, res.NaiveModel)
	fmt.Print(res.NaivePlot)
	fmt.Printf("\nideal (doubling):   cost ≈ %.3g*%s\n", res.IdealCoeff, res.IdealModel)
	fmt.Print(res.IdealPlot)
	return nil
}

func paradigm() error {
	header("§4.3: paradigm agnosticism (imperative vs functional sort)")
	res, err := experiments.Paradigm(sweep)
	if err != nil {
		return err
	}
	fmt.Printf("imperative sort:  model %-8s coeff %.3f  total steps %d\n",
		res.ImperativeModel, res.ImperativeCoeff, res.ImperativeTotalSteps)
	fmt.Printf("functional insert: model %-8s coeff %.3f  total steps %d\n",
		res.FunctionalInsertModel, res.FunctionalInsertCoeff, res.FunctionalTotalSteps)
	fmt.Printf("functional classification: %s\n", res.FunctionalDescription)
	fmt.Printf("nested repetitions (sort ▷ insert): %v\n", res.NestedRecursions)
	return nil
}

func listing3() error {
	header("Listing 3: combining costs")
	prof, err := algoprof.Run(workloads.Listing3, algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	alg := prof.Find("Main.main/loop1")
	if alg == nil {
		return fmt.Errorf("nest algorithm missing")
	}
	fmt.Printf("combined algorithmic steps of the nest: %d (3 outer + 0+1+2 inner)\n", alg.TotalSteps)
	return nil
}

func listing4() error {
	header("Listing 4: constructions measured at repetition exit")
	prof, err := algoprof.Run(workloads.Listing4(15), algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	fmt.Print(prof.Tree())
	return nil
}

func listing5() error {
	header("Listing 5: the array-nest grouping limitation")
	prof, err := algoprof.Run(workloads.Listing5, algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	fmt.Print(prof.Tree())
	outer := prof.Find("Main.main/loop1")
	fmt.Printf("\nouter loop data-structure-less (not grouped): %v\n", outer != nil && outer.DataStructureLess)
	return nil
}

func overhead() error {
	header("§5: profiling overhead")
	res, err := experiments.Overhead(sweep, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Printf("plain run:    %12d instructions  %10.2fms\n",
		res.PlainInstrs, float64(res.PlainNs)/1e6)
	fmt.Printf("profiled run: %12d instructions  %10.2fms\n",
		res.ProfiledInstrs, float64(res.ProfiledNs)/1e6)
	fmt.Printf("slowdown: %.1fx\n", res.Slowdown())

	fmt.Println("\nslowdown by input size (snapshots cost O(size) per invocation):")
	pts, err := experiments.OverheadSweep([]int{16, 64, 256}, sweep.Seed,
		func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  n=%-5d %6.1fx\n", p.Size, p.Slowdown())
	}
	return nil
}

func goldsmith() error {
	header("Baseline: Goldsmith et al. basic-block profiling")
	res, err := experiments.Goldsmith(sweep)
	if err != nil {
		return err
	}
	fmt.Printf("manual input-size annotations required: %d runs\n", res.ManualRuns)
	fmt.Printf("steepest location model: %s\n\n", res.TopModel)
	fmt.Print(res.Report)
	return nil
}

func ablations() error {
	header("Ablations")
	ss, err := experiments.AblationSizeStrategy()
	if err != nil {
		return err
	}
	fmt.Printf("array size strategy on Listing 4's 1000-slot array (10 used):\n")
	fmt.Printf("  capacity strategy: %d   unique-element strategy: %d\n", ss.CapacitySize, ss.UniqueSize)

	id, err := experiments.AblationIdentify(400, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Printf("\ninput identification on a 400-node construction:\n")
	fmt.Printf("  deferred (paper's optimization): %8.2fms\n", float64(id.DeferredNs)/1e6)
	fmt.Printf("  eager (snapshot per access):     %8.2fms\n", float64(id.EagerNs)/1e6)
	fmt.Printf("  same results: %v\n", id.SameInputs)
	return nil
}

func crossover() error {
	header("Extension: insertion sort vs merge sort crossover")
	res, err := experiments.Crossover(sweep)
	if err != nil {
		return err
	}
	fmt.Printf("insertion sort: steps ≈ %.3g*%s\n", res.InsertionCoeff, res.InsertionModel)
	fmt.Printf("merge sort:     steps ≈ %.3g*%s\n", res.MergeCoeff, res.MergeModel)
	fmt.Printf("at n=%d: insertion %.0f vs merge %.0f steps\n",
		sweep.MaxSize, res.InsertionAtMax, res.MergeAtMax)
	if res.CrossoverN > 0 {
		fmt.Printf("crossover: merge sort wins above n ≈ %d\n", res.CrossoverN)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
