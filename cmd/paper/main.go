// Command paper regenerates every table and figure of the AlgoProf paper
// (PLDI'12) on the MJ substrate and prints them in paper-style text form.
//
// Usage:
//
//	paper [-j N] [fig1|fig2|fig3|table1|fig4|fig5|paradigm|listing3|listing4|listing5|overhead|goldsmith|ablations|crossover|compare|all]
//	paper bench [-out BENCH_overhead.json] [-pipeline-out BENCH_pipeline.json]
//
// -j bounds the worker pool used for sweep points and, under "all", for
// whole sections; output ordering is deterministic for every -j. The
// bench subcommand writes machine-readable overhead/sweep timings
// (including the snapshot-memoization ablation) for perf tracking, plus
// the event-transport benchmark (synchronous vs pipelined dispatch,
// single- vs multi-listener, across workload sizes).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"algoprof"
	"algoprof/internal/experiments"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

var sweep = experiments.DefaultSweep

// traceOut, when set, makes the compare section also capture its combined
// three-backend pass as a persistent trace file (see internal/trace).
var traceOut string

func main() {
	maxSize := flag.Int("maxsize", sweep.MaxSize, "largest input size in sweeps")
	step := flag.Int("step", sweep.Step, "size step in sweeps")
	reps := flag.Int("reps", sweep.Reps, "repetitions per size")
	seed := flag.Uint64("seed", sweep.Seed, "random seed")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "stop sweeps after this wall-clock budget; finished sections still print (0 = unlimited)")
	flag.StringVar(&traceOut, "trace-out", "",
		"capture the compare section's combined pass as a trace file for offline replay")
	flag.Parse()
	sweep = experiments.Sweep{MaxSize: *maxSize, Step: *step, Reps: *reps, Seed: *seed}
	experiments.SetParallelism(*jobs)
	if *deadline > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		experiments.SetContext(ctx)
	}

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	if what == "bench" {
		if err := bench(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}
	sections := map[string]func(io.Writer) error{
		"fig1":      fig1,
		"fig2":      fig2,
		"fig3":      fig3,
		"table1":    table1,
		"fig4":      fig45,
		"fig5":      fig45,
		"paradigm":  paradigm,
		"listing3":  listing3,
		"listing4":  listing4,
		"listing5":  listing5,
		"overhead":  overhead,
		"goldsmith": goldsmith,
		"ablations": ablations,
		"crossover": crossover,
		"compare":   compare,
	}
	order := []string{"fig1", "fig2", "fig3", "table1", "fig4", "paradigm",
		"listing3", "listing4", "listing5", "overhead", "goldsmith", "ablations",
		"crossover", "compare"}

	if what == "all" {
		if err := runAll(order, sections); err != nil {
			fatal(err)
		}
		return
	}
	fn, ok := sections[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown section %q; options: %v, bench, or all\n", what, order)
		os.Exit(2)
	}
	if err := fn(os.Stdout); err != nil {
		fatal(err)
	}
}

// runAll executes every section concurrently (bounded by the worker-pool
// parallelism), buffering each section's output so the printed order is
// the paper's order regardless of completion order.
func runAll(order []string, sections map[string]func(io.Writer) error) error {
	bufs := make([]bytes.Buffer, len(order))
	errs := make([]error, len(order))
	sem := make(chan struct{}, experiments.Parallelism())
	var wg sync.WaitGroup
	for i, name := range order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = sections[name](&bufs[i])
		}()
	}
	wg.Wait()
	for i := range order {
		if errs[i] != nil {
			return errs[i]
		}
		os.Stdout.Write(bufs[i].Bytes())
	}
	return nil
}

func header(w io.Writer, s string) {
	fmt.Fprintf(w, "\n================ %s ================\n\n", s)
}

func fig1(w io.Writer) error {
	header(w, "Figure 1: cost functions of insertion sort")
	results, err := experiments.Figure1All(sweep)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Fprintf(w, "(%s input)  steps ≈ %s   [model %s, R2=%.3f, %d runs]\n",
			res.Order, res.Text, res.Model, res.R2, len(res.Points))
		fmt.Fprint(w, res.Plot)
		fmt.Fprintln(w)
	}
	return nil
}

func fig2(w io.Writer) error {
	header(w, "Figure 2: traditional profile (calling context tree)")
	res, err := experiments.Figure2(sweep)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Tree)
	fmt.Fprintf(w, "\nhottest method (exclusive): %s\nmost called: %s\n",
		res.HottestExclusive, res.MostCalled)
	return nil
}

func fig3(w io.Writer) error {
	header(w, "Figure 3: algorithmic profile (repetition tree)")
	res, err := experiments.Figure3(sweep)
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Tree)
	fmt.Fprintf(w, "\nloops: %d; sort: %s (steps ≈ %.3g*%s); construct: %s\n",
		res.LoopCount, res.SortDescription, res.SortCoeff, res.SortModel, res.ConstructDescription)
	return nil
}

func table1(w io.Writer) error {
	header(w, "Table 1: data structure examples")
	outcomes, err := experiments.Table1(24, sweep.Seed)
	if err != nil {
		return err
	}
	fmt.Fprint(w, experiments.RenderTable1(outcomes))
	return nil
}

func fig45(w io.Writer) error {
	header(w, "Figures 4 & 5: growing an array-backed list")
	res, err := experiments.Figure45(sweep)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Repetition tree (naive growth):")
	fmt.Fprint(w, res.NaiveTree)
	fmt.Fprintf(w, "\nappend+grow grouped: %v\n", res.Grouped)
	fmt.Fprintf(w, "\nnaive (grow by 1):  cost ≈ %.3g*%s\n", res.NaiveCoeff, res.NaiveModel)
	fmt.Fprint(w, res.NaivePlot)
	fmt.Fprintf(w, "\nideal (doubling):   cost ≈ %.3g*%s\n", res.IdealCoeff, res.IdealModel)
	fmt.Fprint(w, res.IdealPlot)
	return nil
}

func paradigm(w io.Writer) error {
	header(w, "§4.3: paradigm agnosticism (imperative vs functional sort)")
	res, err := experiments.Paradigm(sweep)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "imperative sort:  model %-8s coeff %.3f  total steps %d\n",
		res.ImperativeModel, res.ImperativeCoeff, res.ImperativeTotalSteps)
	fmt.Fprintf(w, "functional insert: model %-8s coeff %.3f  total steps %d\n",
		res.FunctionalInsertModel, res.FunctionalInsertCoeff, res.FunctionalTotalSteps)
	fmt.Fprintf(w, "functional classification: %s\n", res.FunctionalDescription)
	fmt.Fprintf(w, "nested repetitions (sort ▷ insert): %v\n", res.NestedRecursions)
	return nil
}

func listing3(w io.Writer) error {
	header(w, "Listing 3: combining costs")
	prof, err := algoprof.Run(workloads.Listing3, algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	alg := prof.Find("Main.main/loop1")
	if alg == nil {
		return fmt.Errorf("nest algorithm missing")
	}
	fmt.Fprintf(w, "combined algorithmic steps of the nest: %d (3 outer + 0+1+2 inner)\n", alg.TotalSteps)
	return nil
}

func listing4(w io.Writer) error {
	header(w, "Listing 4: constructions measured at repetition exit")
	prof, err := algoprof.Run(workloads.Listing4(15), algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	fmt.Fprint(w, prof.Tree())
	return nil
}

func listing5(w io.Writer) error {
	header(w, "Listing 5: the array-nest grouping limitation")
	prof, err := algoprof.Run(workloads.Listing5, algoprof.Config{Seed: sweep.Seed})
	if err != nil {
		return err
	}
	fmt.Fprint(w, prof.Tree())
	outer := prof.Find("Main.main/loop1")
	fmt.Fprintf(w, "\nouter loop data-structure-less (not grouped): %v\n", outer != nil && outer.DataStructureLess)
	return nil
}

func overhead(w io.Writer) error {
	header(w, "§5: profiling overhead")
	res, err := experiments.Overhead(sweep, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plain run:    %12d instructions  %10.2fms\n",
		res.PlainInstrs, float64(res.PlainNs)/1e6)
	fmt.Fprintf(w, "profiled run: %12d instructions  %10.2fms\n",
		res.ProfiledInstrs, float64(res.ProfiledNs)/1e6)
	fmt.Fprintf(w, "slowdown: %.1fx\n", res.Slowdown())

	fmt.Fprintln(w, "\nslowdown by input size (without memoization, snapshots cost O(size) per invocation):")
	pts, err := experiments.OverheadSweep([]int{16, 64, 256}, sweep.Seed,
		func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "         memoized   no-memo")
	for _, p := range pts {
		fmt.Fprintf(w, "  n=%-5d %6.1fx  %6.1fx\n", p.Size, p.Slowdown(), p.NoMemoSlowdown())
	}

	fmt.Fprintln(w, "\nslowdown by profiling mode (path counters replace per-access/per-iteration events):")
	mv, err := experiments.ModeOverhead(sweep, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  plain:  %12d instructions  %10.2fms\n", mv.PlainInstrs, float64(mv.PlainNs)/1e6)
	fmt.Fprintf(w, "  events: %12d instructions  %10.2fms  %5.2fx\n",
		mv.EventsInstrs, float64(mv.EventsNs)/1e6, mv.EventsSlowdown())
	fmt.Fprintf(w, "  paths:  %12d instructions  %10.2fms  %5.2fx\n",
		mv.PathsInstrs, float64(mv.PathsNs)/1e6, mv.PathsSlowdown())
	return nil
}

func goldsmith(w io.Writer) error {
	header(w, "Baseline: Goldsmith et al. basic-block profiling")
	res, err := experiments.Goldsmith(sweep)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "manual input-size annotations required: %d runs\n", res.ManualRuns)
	fmt.Fprintf(w, "steepest location model: %s\n\n", res.TopModel)
	fmt.Fprint(w, res.Report)
	return nil
}

func ablations(w io.Writer) error {
	header(w, "Ablations")
	ss, err := experiments.AblationSizeStrategy()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "array size strategy on Listing 4's 1000-slot array (10 used):\n")
	fmt.Fprintf(w, "  capacity strategy: %d   unique-element strategy: %d\n", ss.CapacitySize, ss.UniqueSize)

	id, err := experiments.AblationIdentify(400, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ninput identification on a 400-node construction:\n")
	fmt.Fprintf(w, "  deferred (paper's optimization): %8.2fms\n", float64(id.DeferredNs)/1e6)
	fmt.Fprintf(w, "  eager (snapshot per access):     %8.2fms\n", float64(id.EagerNs)/1e6)
	fmt.Fprintf(w, "  same results: %v\n", id.SameInputs)
	return nil
}

func crossover(w io.Writer) error {
	header(w, "Extension: insertion sort vs merge sort crossover")
	res, err := experiments.Crossover(sweep)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "insertion sort: steps ≈ %.3g*%s\n", res.InsertionCoeff, res.InsertionModel)
	fmt.Fprintf(w, "merge sort:     steps ≈ %.3g*%s\n", res.MergeCoeff, res.MergeModel)
	fmt.Fprintf(w, "at n=%d: insertion %.0f vs merge %.0f steps\n",
		sweep.MaxSize, res.InsertionAtMax, res.MergeAtMax)
	if res.CrossoverN > 0 {
		fmt.Fprintf(w, "crossover: merge sort wins above n ≈ %d\n", res.CrossoverN)
	}
	return nil
}

func compare(w io.Writer) error {
	header(w, "Single-pass backend comparison (pipelined event transport)")
	res, err := experiments.Compare(sweep)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload executions needed: %d (was 3 before the pipelined transport)\n", res.Passes)
	fmt.Fprintf(w, "algorithmic profile: sort steps ≈ %.3g*%s\n", res.SortCoeff, res.SortModel)
	fmt.Fprintf(w, "CCT baseline:        hottest method (exclusive) %s\n", res.HottestExclusive)
	fmt.Fprintf(w, "basic-block baseline: hottest block %s\n", res.TopBlock)
	fmt.Fprintf(w, "pipelined == synchronous (byte-identical): %v\n", res.Identical)
	if traceOut != "" {
		return captureTrace(w)
	}
	return nil
}

// captureTrace records the running example's combined three-backend pass
// to -trace-out, verifies the trace replays to the identical result, and
// reports the file's stats.
func captureTrace(w io.Writer) error {
	src := workloads.RunningExample(workloads.Random, sweep.MaxSize, sweep.Step, sweep.Reps)
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	live, err := experiments.RecordBackends(src, sweep.Seed, f, trace.WriterOptions{Compress: true})
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	r, err := trace.Open(traceOut)
	if err != nil {
		return err
	}
	replayed, err := experiments.ReplayBackends(src, r)
	if err != nil {
		return err
	}
	st := r.Stats()
	fi, err := os.Stat(traceOut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntrace captured: %s (%d bytes, %d frames, %d records, %d instructions)\n",
		traceOut, fi.Size(), st.Frames, st.Records, st.Instructions)
	fmt.Fprintf(w, "offline replay == live recording (byte-identical): %v\n",
		experiments.BackendsFingerprint(replayed) == experiments.BackendsFingerprint(live))
	return nil
}

// benchHeader is the provenance header shared by every BENCH_*.json
// writer: generation time, the actual GOMAXPROCS of the run, and the trace
// format version the build writes, recorded once and the same way
// everywhere.
type benchHeader struct {
	GeneratedUnix      int64 `json:"generated_unix"`
	GoMaxProcs         int   `json:"go_maxprocs"`
	TraceFormatVersion int   `json:"trace_format_version"`
}

func newBenchHeader() benchHeader {
	return benchHeader{
		GeneratedUnix:      time.Now().Unix(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		TraceFormatVersion: trace.Version,
	}
}

// benchModes is the per-mode overhead section of BENCH_overhead.json: the
// slowdown trajectory events → paths the path-counter mode exists for.
type benchModes struct {
	PlainNs        int64   `json:"plain_ns"`
	EventsNs       int64   `json:"events_ns"`
	PathsNs        int64   `json:"paths_ns"`
	PlainInstrs    uint64  `json:"plain_instrs"`
	EventsInstrs   uint64  `json:"events_instrs"`
	PathsInstrs    uint64  `json:"paths_instrs"`
	EventsSlowdown float64 `json:"events_slowdown"`
	PathsSlowdown  float64 `json:"paths_slowdown"`
}

// benchReport is the machine-readable perf baseline written by the bench
// subcommand — the trajectory file future changes compare against.
type benchReport struct {
	benchHeader
	Parallelism int `json:"parallelism"`
	Sweep       struct {
		MaxSize int    `json:"max_size"`
		Step    int    `json:"step"`
		Reps    int    `json:"reps"`
		Seed    uint64 `json:"seed"`
	} `json:"sweep"`
	Overhead struct {
		PlainInstrs    uint64  `json:"plain_instrs"`
		ProfiledInstrs uint64  `json:"profiled_instrs"`
		PlainNs        int64   `json:"plain_ns"`
		ProfiledNs     int64   `json:"profiled_ns"`
		Slowdown       float64 `json:"slowdown"`
	} `json:"overhead"`
	Modes  benchModes   `json:"mode_overhead"`
	Points []benchPoint `json:"overhead_sweep"`
}

type benchPoint struct {
	Size           int     `json:"size"`
	PlainNs        int64   `json:"plain_ns"`
	ProfiledNs     int64   `json:"profiled_ns"`
	NoMemoNs       int64   `json:"no_memo_ns"`
	Slowdown       float64 `json:"slowdown"`
	NoMemoSlowdown float64 `json:"no_memo_slowdown"`
	MemoSpeedup    float64 `json:"memo_speedup"`
}

// pipelineReport is the machine-readable transport benchmark written to
// BENCH_pipeline.json: synchronous vs pipelined wall time, single- vs
// multi-listener, across workload sizes.
type pipelineReport struct {
	benchHeader
	Seed   uint64          `json:"seed"`
	Points []pipelinePoint `json:"points"`
}

type pipelinePoint struct {
	Size            int     `json:"size"`
	Passes          int     `json:"scan_passes"`
	ThreePassNs     int64   `json:"three_pass_ns"`
	SyncFanoutNs    int64   `json:"sync_fanout_ns"`
	PipelinedNs     int64   `json:"pipelined_ns"`
	SoloSyncNs      int64   `json:"solo_sync_ns"`
	SoloPipelinedNs int64   `json:"solo_pipelined_ns"`
	Speedup         float64 `json:"speedup_vs_three_pass"`
	Identical       bool    `json:"identical"`
}

// replayReport is the machine-readable replay/diff throughput benchmark
// written to BENCH_replay.json: sequential vs parallel trace replay (with
// the byte-identity assertion), end-to-end parallel profile replay, and
// the Merkle-indexed diff against the full scan it replaces.
type replayReport struct {
	benchHeader
	Parallelism int    `json:"parallelism"`
	Seed        uint64 `json:"seed"`
	experiments.ReplayBenchResult
}

// bench measures overhead and the memoization ablation and writes the
// results as JSON (the BENCH_overhead.json perf baseline), plus the event
// transport benchmark (BENCH_pipeline.json) and the parallel-replay/diff
// benchmark (BENCH_replay.json).
func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_overhead.json", "output file (\"-\" = stdout, \"\" = skip)")
	pipeOut := fs.String("pipeline-out", "BENCH_pipeline.json",
		"pipeline benchmark output file (\"-\" = stdout, \"\" = skip)")
	replayOut := fs.String("replay-out", "BENCH_replay.json",
		"parallel-replay benchmark output file (\"-\" = stdout, \"\" = skip)")
	check := fs.Bool("check", false,
		"regression gate: measure the per-mode overhead and parallel-replay speedup fresh and fail when either regressed; writes nothing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	now := func() int64 { return time.Now().UnixNano() }
	if *check {
		return benchCheck(*out, now)
	}
	if *out == "" {
		if *pipeOut != "" {
			if err := benchPipeline(*pipeOut, now); err != nil {
				return err
			}
		}
		if *replayOut != "" {
			return benchReplay(*replayOut, now)
		}
		return nil
	}
	var rep benchReport
	rep.benchHeader = newBenchHeader()
	rep.Parallelism = experiments.Parallelism()
	rep.Sweep.MaxSize = sweep.MaxSize
	rep.Sweep.Step = sweep.Step
	rep.Sweep.Reps = sweep.Reps
	rep.Sweep.Seed = sweep.Seed

	ov, err := experiments.Overhead(sweep, now)
	if err != nil {
		return err
	}
	rep.Overhead.PlainInstrs = ov.PlainInstrs
	rep.Overhead.ProfiledInstrs = ov.ProfiledInstrs
	rep.Overhead.PlainNs = ov.PlainNs
	rep.Overhead.ProfiledNs = ov.ProfiledNs
	rep.Overhead.Slowdown = ov.Slowdown()

	mv, err := experiments.ModeOverhead(sweep, now)
	if err != nil {
		return err
	}
	rep.Modes = modeSection(mv)

	pts, err := experiments.OverheadSweep([]int{16, 64, 256, 512}, sweep.Seed, now)
	if err != nil {
		return err
	}
	for _, p := range pts {
		bp := benchPoint{
			Size:           p.Size,
			PlainNs:        p.PlainNs,
			ProfiledNs:     p.ProfiledNs,
			NoMemoNs:       p.NoMemoNs,
			Slowdown:       p.Slowdown(),
			NoMemoSlowdown: p.NoMemoSlowdown(),
		}
		if p.ProfiledNs > 0 {
			bp.MemoSpeedup = float64(p.NoMemoNs) / float64(p.ProfiledNs)
		}
		rep.Points = append(rep.Points, bp)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d sweep points)\n", *out, len(rep.Points))
	}

	if *pipeOut != "" {
		if err := benchPipeline(*pipeOut, now); err != nil {
			return err
		}
	}
	if *replayOut != "" {
		return benchReplay(*replayOut, now)
	}
	return nil
}

// modeSection maps a measured per-mode overhead result to its report
// section.
func modeSection(mv *experiments.ModeOverheadResult) benchModes {
	return benchModes{
		PlainNs:        mv.PlainNs,
		EventsNs:       mv.EventsNs,
		PathsNs:        mv.PathsNs,
		PlainInstrs:    mv.PlainInstrs,
		EventsInstrs:   mv.EventsInstrs,
		PathsInstrs:    mv.PathsInstrs,
		EventsSlowdown: mv.EventsSlowdown(),
		PathsSlowdown:  mv.PathsSlowdown(),
	}
}

// benchCheck is the bench-smoke regression gate: it re-measures the
// per-mode overhead and fails when the fresh paths-mode slowdown exceeds
// the baseline recorded in the committed report by more than 1.5x (wide
// enough for shared-runner noise, tight enough to catch the dispatch
// regressions path mode exists to avoid). A baseline file without a mode
// section (pre-paths format) passes with a notice so the gate can't block
// the first regeneration.
func benchCheck(baselinePath string, now func() int64) error {
	mv, err := experiments.ModeOverhead(sweep, now)
	if err != nil {
		return err
	}
	fresh := mv.PathsSlowdown()
	fmt.Printf("mode overhead: plain=%v events=%v (%.2fx) paths=%v (%.2fx)\n",
		time.Duration(mv.PlainNs), time.Duration(mv.EventsNs), mv.EventsSlowdown(),
		time.Duration(mv.PathsNs), fresh)

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench -check: no baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench -check: bad baseline %s: %w", baselinePath, err)
	}
	if base.Modes.PathsSlowdown == 0 {
		fmt.Printf("bench -check: %s has no mode_overhead section; run `paper bench` to record one\n", baselinePath)
		return nil
	}
	limit := base.Modes.PathsSlowdown * 1.5
	if fresh > limit {
		return fmt.Errorf("bench -check: paths-mode slowdown %.2fx exceeds baseline %.2fx by more than 1.5x (limit %.2fx)",
			fresh, base.Modes.PathsSlowdown, limit)
	}
	fmt.Printf("bench -check: ok (paths %.2fx <= limit %.2fx)\n", fresh, limit)
	return benchCheckReplay(now)
}

// benchCheckReplay is the parallel-replay half of the bench-smoke gate: a
// fresh quick measurement must replay byte-identically at every worker
// count and must not be slower than sequential at the largest one. The
// bar is 1.0x, not the committed baseline's speedup — shared runners vary
// too much in core count for an absolute ratio — so what it catches is
// parallelism that stopped paying at all, and any identity break.
func benchCheckReplay(now func() int64) error {
	res, err := experiments.ReplayBench(sweep, []int{1, 4}, now)
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		fmt.Printf("replay -j %d: %v (%.2fx, identical=%v)\n",
			p.Workers, time.Duration(p.ReplayNs), p.Speedup, p.Identical)
		if !p.Identical {
			return fmt.Errorf("bench -check: parallel replay at -j %d diverged from sequential", p.Workers)
		}
	}
	if !res.ProfileIdentical {
		return fmt.Errorf("bench -check: parallel profile replay (-j %d) diverged from sequential", res.ProfileParWorkers)
	}
	last := res.Points[len(res.Points)-1]
	if cores := runtime.GOMAXPROCS(0); cores < 2 {
		// One core cannot make parallel decode pay; only identity is
		// checkable here. The speedup bar applies on multi-core runners.
		fmt.Printf("bench -check: ok (streams identical; GOMAXPROCS=%d, speedup bar skipped)\n", cores)
		return nil
	}
	if last.Speedup < 1.0 {
		return fmt.Errorf("bench -check: parallel replay at -j %d is slower than sequential (%.2fx < 1.0x)",
			last.Workers, last.Speedup)
	}
	fmt.Printf("bench -check: ok (replay -j %d %.2fx >= 1.0x, streams identical)\n", last.Workers, last.Speedup)
	return nil
}

// benchPipeline runs the event-transport benchmark and writes
// BENCH_pipeline.json.
func benchPipeline(out string, now func() int64) error {
	var rep pipelineReport
	rep.benchHeader = newBenchHeader()
	rep.Seed = sweep.Seed

	pts, err := experiments.PipelineBench([]int{16, 64, 128, 256}, sweep.Seed, now)
	if err != nil {
		return err
	}
	for _, p := range pts {
		rep.Points = append(rep.Points, pipelinePoint{
			Size:            p.Size,
			Passes:          p.Passes,
			ThreePassNs:     p.ThreePassNs,
			SyncFanoutNs:    p.SyncFanoutNs,
			PipelinedNs:     p.PipelinedNs,
			SoloSyncNs:      p.SoloSyncNs,
			SoloPipelinedNs: p.SoloPipelinedNs,
			Speedup:         p.Speedup(),
			Identical:       p.Identical,
		})
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d sizes)\n", out, len(rep.Points))
	return nil
}

// benchReplay runs the parallel-replay and Merkle-diff benchmark and
// writes BENCH_replay.json.
func benchReplay(out string, now func() int64) error {
	var rep replayReport
	rep.benchHeader = newBenchHeader()
	rep.Parallelism = experiments.Parallelism()
	rep.Seed = sweep.Seed

	res, err := experiments.ReplayBench(sweep, []int{1, 2, 4}, now)
	if err != nil {
		return err
	}
	rep.ReplayBenchResult = *res

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	best := 0.0
	for _, p := range res.Points {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	fmt.Printf("wrote %s (replay speedup up to %.2fx over %d frames, diff %.1fx)\n",
		out, best, res.Frames, res.DiffSpeedup)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
