// Package probe lets natively written Go code feed the algorithmic
// profiler directly, demonstrating that the profiler core is independent
// of the MJ frontend: any source of loop/recursion/structure-access events
// produces a repetition tree, input identification, algorithm grouping,
// classification, and cost functions.
//
// A Session corresponds to one profiled thread of execution (the paper
// builds one repetition tree per thread). Instrument code explicitly:
//
//	s := probe.NewSession()
//	s.LoopEnter("build")
//	var head *probe.Object
//	for i := 0; i < n; i++ {
//	    s.LoopIterate("build")
//	    node := s.NewObject("Node")
//	    node.SetLink("next", head)
//	    head = node
//	}
//	s.LoopExit("build")
//	profile := s.Profile()
package probe

import (
	"fmt"
	"sync/atomic"

	"algoprof"
	"algoprof/internal/core"
	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/rectype"
	"algoprof/internal/snapshot"
)

// maxLinkFields bounds the number of distinct link names per session.
const maxLinkFields = 4096

// Options configure a Session.
type Options struct {
	// UniqueElements selects the unique-element array size strategy.
	UniqueElements bool
	// EagerIdentify disables the deferred-identification optimization.
	EagerIdentify bool
	// Pipelined routes events through the batched ring-buffer transport:
	// the session produces records, the profiler core consumes them on its
	// own goroutine. The session fences every mirror-heap mutation with
	// the transport barrier, so profiles are byte-identical to
	// synchronous sessions.
	Pipelined bool
}

// Session profiles one thread of explicitly instrumented Go code.
// Sessions are not safe for concurrent use: create one per goroutine.
type Session struct {
	prof *core.Profiler
	// sink receives the session's events: the profiler itself, or the
	// pipeline producer in pipelined mode.
	sink events.Listener
	// barrier fences mirror-heap mutations in pipelined mode (no-op
	// otherwise).
	barrier func()
	tp      *pipeline.Transport

	loopIDs   map[string]int
	loopNames []string
	recIDs    map[string]int
	recNames  []string
	fieldIDs  map[string]int

	finished bool
}

var entityIDs atomic.Uint64

// NewSession creates an empty profiling session.
func NewSession() *Session { return NewSessionWith(Options{}) }

// NewSessionWith creates a session with explicit options.
func NewSessionWith(o Options) *Session {
	s := &Session{
		loopIDs:  map[string]int{},
		recIDs:   map[string]int{},
		fieldIDs: map[string]int{},
	}
	rt := &rectype.Result{RecursiveField: make([]bool, maxLinkFields)}
	for i := range rt.RecursiveField {
		rt.RecursiveField[i] = true
	}
	opts := core.Options{}
	if o.UniqueElements {
		opts.SizeStrategy = snapshot.UniqueElements
	}
	if o.EagerIdentify {
		opts.Identify = core.EagerIdentify
	}
	s.prof = core.NewCustomProfiler(rt,
		func(kind core.NodeKind, id int) string {
			switch kind {
			case core.KindLoop:
				if id < len(s.loopNames) {
					return s.loopNames[id]
				}
			case core.KindRecursion:
				if id < len(s.recNames) {
					return s.recNames[id] + "/recursion"
				}
			}
			return fmt.Sprintf("node#%d", id)
		},
		func(int) string { return "" },
		opts)
	s.sink = s.prof
	s.barrier = func() {}
	if o.Pipelined {
		s.tp = pipeline.New(pipeline.Config{})
		s.tp.Add("core", s.prof, pipeline.ConsumerOptions{HeapReader: true})
		pr := s.tp.Producer()
		s.sink = pr
		s.barrier = pr.Barrier
		s.tp.Start()
	}
	return s
}

func (s *Session) loopID(name string) int {
	if id, ok := s.loopIDs[name]; ok {
		return id
	}
	id := len(s.loopNames)
	s.loopIDs[name] = id
	s.loopNames = append(s.loopNames, name)
	return id
}

func (s *Session) recID(name string) int {
	if id, ok := s.recIDs[name]; ok {
		return id
	}
	id := len(s.recNames)
	s.recIDs[name] = id
	s.recNames = append(s.recNames, name)
	return id
}

func (s *Session) fieldID(name string) int {
	if id, ok := s.fieldIDs[name]; ok {
		return id
	}
	id := len(s.fieldIDs)
	if id >= maxLinkFields {
		panic(fmt.Sprintf("probe: more than %d distinct link names", maxLinkFields))
	}
	s.fieldIDs[name] = id
	return id
}

// LoopEnter marks entry into the named loop.
func (s *Session) LoopEnter(name string) { s.sink.LoopEntry(s.loopID(name)) }

// LoopIterate marks one iteration (a back-edge traversal). Call it at the
// top of each iteration after the first, or simply every iteration — the
// paper counts back edges, i.e. iterations after the first entry; calling
// it once per iteration matches counting completed iterations.
func (s *Session) LoopIterate(name string) { s.sink.LoopBack(s.loopID(name)) }

// LoopExit marks exit from the named loop.
func (s *Session) LoopExit(name string) { s.sink.LoopExit(s.loopID(name)) }

// RecursionEnter marks a call of a potentially recursive function; nested
// calls with the same name fold into one repetition node and count
// algorithmic steps.
func (s *Session) RecursionEnter(name string) { s.sink.MethodEntry(s.recID(name)) }

// RecursionExit marks the matching return.
func (s *Session) RecursionExit(name string) { s.sink.MethodExit(s.recID(name)) }

// ReadInput marks consumption of external input.
func (s *Session) ReadInput() { s.sink.InputRead() }

// WriteOutput marks production of external output.
func (s *Session) WriteOutput() { s.sink.OutputWrite() }

// Profile finishes the session and assembles the algorithmic profile.
func (s *Session) Profile() *algoprof.Profile {
	if !s.finished {
		if s.tp != nil {
			if err := s.tp.Close(); err != nil {
				panic(err) // a listener panic surfaced on the consumer goroutine
			}
		}
		s.prof.Finish()
		s.finished = true
	}
	return algoprof.FromProfiler(s.prof)
}

// Errors returns internal consistency errors (unbalanced events).
func (s *Session) Errors() []error { return s.prof.Errors() }

// ---------------------------------------------------------------------------
// Heap mirror

// Object mirrors one node of a recursive structure in the profiled code.
type Object struct {
	session *Session
	id      uint64
	typ     string
	links   []link
}

type link struct {
	field  int
	target *Object
}

// NewObject allocates a structure node and emits the allocation event.
func (s *Session) NewObject(typeName string) *Object {
	o := &Object{session: s, id: entityIDs.Add(1), typ: typeName}
	s.sink.Alloc(o, 0)
	return o
}

// SetLink writes a recursive link (a structure write event). A nil target
// clears the link.
func (o *Object) SetLink(name string, target *Object) {
	f := o.session.fieldID(name)
	// Fence before mutating the mirror heap: a pipelined consumer may
	// still be traversing this object for an earlier event.
	o.session.barrier()
	for i := range o.links {
		if o.links[i].field == f {
			o.links[i].target = target
			o.session.sink.FieldPut(o, f, entityOrNil(target))
			return
		}
	}
	o.links = append(o.links, link{field: f, target: target})
	o.session.sink.FieldPut(o, f, entityOrNil(target))
}

// Link reads a recursive link (a structure read event).
func (o *Object) Link(name string) *Object {
	f := o.session.fieldID(name)
	o.session.sink.FieldGet(o, f)
	for i := range o.links {
		if o.links[i].field == f {
			return o.links[i].target
		}
	}
	return nil
}

func entityOrNil(o *Object) events.Entity {
	if o == nil {
		return nil
	}
	return o
}

// EntityID implements events.Entity.
func (o *Object) EntityID() uint64 { return o.id }

// TypeName implements events.Entity.
func (o *Object) TypeName() string { return o.typ }

// ClassID implements events.Entity.
func (o *Object) ClassID() int { return 0 }

// IsArray implements events.Entity.
func (o *Object) IsArray() bool { return false }

// Capacity implements events.Entity.
func (o *Object) Capacity() int { return 0 }

// ForEachRef implements events.Entity.
func (o *Object) ForEachRef(visit func(fieldID int, target events.Entity)) {
	for _, l := range o.links {
		if l.target != nil {
			visit(l.field, l.target)
		}
	}
}

// ForEachElemKey implements events.Entity.
func (o *Object) ForEachElemKey(func(events.ElemKey)) {}

// Slice mirrors an array in the profiled code. Elements may be *Object
// references, ints, or strings.
type Slice struct {
	session *Session
	id      uint64
	typ     string
	elems   []any
}

// NewSlice allocates an array mirror with the given capacity.
func (s *Session) NewSlice(typeName string, capacity int) *Slice {
	sl := &Slice{session: s, id: entityIDs.Add(1), typ: typeName, elems: make([]any, capacity)}
	s.sink.Alloc(sl, -1)
	return sl
}

// Store writes element i (an array store event).
func (sl *Slice) Store(i int, v any) {
	sl.session.barrier()
	sl.elems[i] = v
	var t events.Entity
	if o, ok := v.(*Object); ok && o != nil {
		t = o
	}
	sl.session.sink.ArrayStore(sl, t)
}

// Load reads element i (an array load event).
func (sl *Slice) Load(i int) any {
	sl.session.sink.ArrayLoad(sl)
	return sl.elems[i]
}

// Len returns the slice capacity.
func (sl *Slice) Len() int { return len(sl.elems) }

// EntityID implements events.Entity.
func (sl *Slice) EntityID() uint64 { return sl.id }

// TypeName implements events.Entity.
func (sl *Slice) TypeName() string { return sl.typ }

// ClassID implements events.Entity.
func (sl *Slice) ClassID() int { return -1 }

// IsArray implements events.Entity.
func (sl *Slice) IsArray() bool { return true }

// Capacity implements events.Entity.
func (sl *Slice) Capacity() int { return len(sl.elems) }

// ForEachRef implements events.Entity.
func (sl *Slice) ForEachRef(visit func(fieldID int, target events.Entity)) {
	for _, e := range sl.elems {
		if o, ok := e.(*Object); ok && o != nil {
			visit(-1, o)
		}
	}
}

// ForEachElemKey implements events.Entity.
func (sl *Slice) ForEachElemKey(visit func(events.ElemKey)) {
	for _, e := range sl.elems {
		switch v := e.(type) {
		case *Object:
			if v != nil {
				visit(events.RefKey(v.id))
			}
		case string:
			visit(v)
		case int:
			visit(int64(v))
		case int64:
			visit(v)
		case nil:
			// untouched slot of a reference slice: skip
		default:
			visit(fmt.Sprint(v))
		}
	}
}
