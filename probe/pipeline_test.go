package probe

import (
	"testing"
)

// exerciseSession drives one session through every probe surface that the
// pipelined transport must fence: linked-structure construction and
// traversal (SetLink barriers), slice mirrors (Store barriers), and a
// size sweep that forces remeasurement of live inputs.
func exerciseSession(s *Session) {
	s.LoopEnter("harness")
	for size := 4; size <= 32; size += 4 {
		s.LoopIterate("harness")
		head := buildList(s, "build", size)
		countList(s, "count", head)
		sl := s.NewSlice("int[]", size*2)
		s.LoopEnter("fill")
		for i := 0; i < size; i++ {
			s.LoopIterate("fill")
			sl.Store(i, i*2)
		}
		s.LoopExit("fill")
	}
	s.LoopExit("harness")
}

func sessionFingerprint(t *testing.T, s *Session) string {
	t.Helper()
	prof := s.Profile()
	if errs := s.Errors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
	js, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return prof.Tree() + "\n---\n" + string(js)
}

// TestPipelinedSessionByteIdentical asserts that a pipelined session — with
// the profiler consuming on its own goroutine behind the ring buffer —
// produces a byte-identical profile to a synchronous session.
func TestPipelinedSessionByteIdentical(t *testing.T) {
	sync := NewSession()
	exerciseSession(sync)
	piped := NewSessionWith(Options{Pipelined: true})
	exerciseSession(piped)
	a, b := sessionFingerprint(t, sync), sessionFingerprint(t, piped)
	if a != b {
		t.Errorf("pipelined session profile differs from synchronous:\n--- sync ---\n%s\n--- pipelined ---\n%s", a, b)
	}
}

// TestPipelinedSessionFindsAlgorithms sanity-checks a pipelined session
// end-to-end on its own (not just against the sync baseline).
func TestPipelinedSessionFindsAlgorithms(t *testing.T) {
	s := NewSessionWith(Options{Pipelined: true})
	head := buildList(s, "build", 20)
	if got := countList(s, "count", head); got != 20 {
		t.Fatalf("count = %d", got)
	}
	prof := s.Profile()
	if errs := s.Errors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}
	if prof.Find("build") == nil || prof.Find("count") == nil {
		t.Fatal("pipelined session missed build/count algorithms")
	}
}
