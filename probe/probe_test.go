package probe

import (
	"strings"
	"sync"
	"testing"
)

// buildList constructs a singly linked list of n nodes inside a named
// loop, returning the head.
func buildList(s *Session, loop string, n int) *Object {
	s.LoopEnter(loop)
	var head *Object
	for i := 0; i < n; i++ {
		s.LoopIterate(loop)
		node := s.NewObject("Node")
		node.SetLink("next", head)
		head = node
	}
	s.LoopExit(loop)
	return head
}

// countList traverses the list inside a named loop.
func countList(s *Session, loop string, head *Object) int {
	s.LoopEnter(loop)
	n := 0
	for cur := head; cur != nil; {
		s.LoopIterate(loop)
		n++
		cur = cur.Link("next")
	}
	s.LoopExit(loop)
	return n
}

func TestNativeGoListProfile(t *testing.T) {
	s := NewSession()
	head := buildList(s, "build", 20)
	if got := countList(s, "count", head); got != 20 {
		t.Fatalf("count = %d", got)
	}
	prof := s.Profile()
	if errs := s.Errors(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}

	build := prof.Find("build")
	if build == nil {
		t.Fatal("no build algorithm")
	}
	if !strings.Contains(build.Description, "Construction of a Node-based recursive structure") {
		t.Errorf("build description = %q", build.Description)
	}
	if build.TotalSteps != 20 {
		t.Errorf("build steps = %d, want 20", build.TotalSteps)
	}

	count := prof.Find("count")
	if count == nil {
		t.Fatal("no count algorithm")
	}
	if !strings.Contains(count.Description, "Traversal") {
		t.Errorf("count description = %q", count.Description)
	}
}

func TestNativeGoCostFunction(t *testing.T) {
	s := NewSession()
	// A sweep: for each size, build a fresh list and traverse it.
	s.LoopEnter("harness")
	for size := 4; size <= 40; size += 4 {
		s.LoopIterate("harness")
		head := buildList(s, "build", size)
		countList(s, "count", head)
	}
	s.LoopExit("harness")
	prof := s.Profile()

	count := prof.Find("count")
	if count == nil {
		t.Fatal("no count algorithm")
	}
	if len(count.CostFunctions) == 0 {
		t.Fatal("no fitted cost function")
	}
	cf := count.CostFunctions[0]
	if cf.Model != "n" {
		t.Errorf("traversal model = %s, want n", cf.Model)
	}
	// The harness must not absorb the structure algorithms.
	harness := prof.Find("harness")
	if harness == nil {
		t.Fatal("no harness algorithm")
	}
	if !harness.DataStructureLess {
		t.Errorf("harness description = %q, want data-structure-less", harness.Description)
	}
}

func TestRecursionFoldingNative(t *testing.T) {
	s := NewSession()
	head := buildList(s, "build", 12)

	var sum func(o *Object) int
	sum = func(o *Object) int {
		s.RecursionEnter("sumList")
		defer s.RecursionExit("sumList")
		if o == nil {
			return 0
		}
		return 1 + sum(o.Link("next"))
	}
	if got := sum(head); got != 12 {
		t.Fatalf("sum = %d", got)
	}
	prof := s.Profile()
	rec := prof.Find("sumList/recursion")
	if rec == nil {
		names := []string{}
		for _, a := range prof.Algorithms {
			names = append(names, a.Name)
		}
		t.Fatalf("no recursion algorithm; have %v", names)
	}
	if rec.Invocations != 1 {
		t.Errorf("recursion invocations = %d, want 1 (folded)", rec.Invocations)
	}
	// 12 nodes + the nil base case = 12 recursive re-entries.
	if rec.TotalSteps != 12 {
		t.Errorf("recursion steps = %d, want 12", rec.TotalSteps)
	}
}

func TestSliceMirror(t *testing.T) {
	s := NewSession()
	s.LoopEnter("fill")
	sl := s.NewSlice("int[]", 100)
	for i := 0; i < 10; i++ {
		s.LoopIterate("fill")
		sl.Store(i, i*2)
	}
	s.LoopExit("fill")
	prof := s.Profile()
	fill := prof.Find("fill")
	if fill == nil {
		t.Fatal("no fill algorithm")
	}
	if !strings.Contains(fill.Description, "Modification") &&
		!strings.Contains(fill.Description, "Construction") {
		t.Errorf("fill description = %q", fill.Description)
	}
	// Capacity strategy: input size 100.
	p, _ := prof.Raw()
	reg := p.Registry()
	found := false
	for _, id := range reg.CanonicalIDs() {
		if reg.Input(id).MaxSize == 100 {
			found = true
		}
	}
	if !found {
		t.Error("array input of capacity 100 not measured")
	}
}

func TestUniqueElementsOption(t *testing.T) {
	s := NewSessionWith(Options{UniqueElements: true})
	s.LoopEnter("fill")
	sl := s.NewSlice("int[]", 100)
	for i := 0; i < 10; i++ {
		s.LoopIterate("fill")
		sl.Store(i, i*2)
	}
	s.LoopExit("fill")
	prof := s.Profile()
	p, _ := prof.Raw()
	reg := p.Registry()
	found := false
	for _, id := range reg.CanonicalIDs() {
		if reg.Input(id).MaxSize == 10 {
			found = true
		}
	}
	if !found {
		t.Error("unique-element strategy should measure 10 used slots")
	}
}

func TestIOEvents(t *testing.T) {
	s := NewSession()
	s.LoopEnter("pump")
	for i := 0; i < 5; i++ {
		s.LoopIterate("pump")
		s.ReadInput()
		s.WriteOutput()
	}
	s.LoopExit("pump")
	prof := s.Profile()
	pump := prof.Find("pump")
	if pump == nil {
		t.Fatal("no pump algorithm")
	}
	if !strings.Contains(pump.Description, "Input algorithm") ||
		!strings.Contains(pump.Description, "Output algorithm") {
		t.Errorf("pump description = %q", pump.Description)
	}
}

func TestPerGoroutineSessions(t *testing.T) {
	// The paper produces one repetition tree per thread; sessions are
	// independent, so concurrent goroutines each profile their own work.
	var wg sync.WaitGroup
	results := make([]*Session, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSession()
			head := buildList(s, "build", 5+g)
			countList(s, "count", head)
			results[g] = s
		}(g)
	}
	wg.Wait()
	for g, s := range results {
		prof := s.Profile()
		build := prof.Find("build")
		if build == nil || build.TotalSteps != int64(5+g) {
			t.Errorf("goroutine %d: build steps wrong", g)
		}
	}
}

func TestSharedStructureAcrossLoops(t *testing.T) {
	// A nested scan over one list groups into one algorithm, exactly like
	// the MJ frontend.
	s := NewSession()
	head := buildList(s, "build", 10)
	s.LoopEnter("outer")
	for a := head; a != nil; a = a.Link("next") {
		s.LoopIterate("outer")
		s.LoopEnter("inner")
		for b := a.Link("next"); b != nil; b = b.Link("next") {
			s.LoopIterate("inner")
		}
		s.LoopExit("inner")
	}
	s.LoopExit("outer")
	prof := s.Profile()
	outer := prof.Find("outer")
	if outer == nil {
		t.Fatal("no outer algorithm")
	}
	hasInner := false
	for _, n := range outer.Nodes {
		if n == "inner" {
			hasInner = true
		}
	}
	if !hasInner {
		t.Errorf("outer/inner scan must group: %v", outer.Nodes)
	}
	// 10 outer iterations + 9+8+...+0 inner = 10 + 45.
	if outer.TotalSteps != 55 {
		t.Errorf("combined steps = %d, want 55", outer.TotalSteps)
	}
}
